package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestWriteFigureCSVs(t *testing.T) {
	dir := t.TempDir()
	cfg := QuickConfig()
	cfg.Benches = []string{"p1", "r1"}
	cfg.MCSamples = 1000
	if err := WriteFigureCSVs(dir, cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2.csv", "fig3.csv", "fig5.csv", "fig6.csv"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		records, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(records) < 3 {
			t.Errorf("%s: only %d rows", name, len(records))
		}
		// Every data cell after the header parses as a number (except the
		// bench-name column of fig5).
		for r, rec := range records[1:] {
			for c, cell := range rec {
				if name == "fig5.csv" && c == 0 {
					continue
				}
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					t.Fatalf("%s row %d col %d: %q not numeric", name, r, c, cell)
				}
			}
		}
	}
	// Densities in fig3 integrate to ~1 (sanity of the exported series).
	f, err := os.Open(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	var width, sum float64
	x0, _ := strconv.ParseFloat(records[1][0], 64)
	x1, _ := strconv.ParseFloat(records[2][0], 64)
	width = x1 - x0
	for _, rec := range records[1:] {
		d, _ := strconv.ParseFloat(rec[1], 64)
		sum += d * width
	}
	if sum < 0.9 || sum > 1.1 {
		t.Errorf("fig3 empirical PDF integrates to %g", sum)
	}
	// Unwritable directory errors.
	if err := WriteFigureCSVs("/proc/definitely-not-writable/x", cfg); err == nil {
		t.Error("unwritable dir accepted")
	}
}
