package vabuf_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// buildCmd compiles one of the repo's commands into a temp dir.
func buildCmd(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func TestBufinsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	bin := buildCmd(t, "./cmd/bufins")
	out, _, err := runCmd(t, bin, "-bench", "p1", "-algo", "wid", "-criticality", "2")
	if err != nil {
		t.Fatalf("bufins: %v\n%s", err, out)
	}
	for _, want := range []string{"269 sinks", "RAT:", "buffers:", "most critical sinks:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic NOM run.
	out2, _, err := runCmd(t, bin, "-bench", "p1", "-algo", "nom")
	if err != nil {
		t.Fatalf("bufins nom: %v", err)
	}
	if !strings.Contains(out2, "sigma 0.00") {
		t.Errorf("NOM run shows nonzero sigma:\n%s", out2)
	}
	// Error paths exit non-zero.
	if _, _, err := runCmd(t, bin, "-bench", "nope"); err == nil {
		t.Error("unknown bench accepted")
	}
	if _, _, err := runCmd(t, bin); err == nil {
		t.Error("missing inputs accepted")
	}
	if _, _, err := runCmd(t, bin, "-bench", "p1", "-algo", "martian"); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, stderr, err := runCmd(t, bin, "-bench", "p1", "-pbar", "1.5"); err == nil {
		t.Error("out-of-range -pbar accepted")
	} else if !strings.Contains(stderr, "(0, 1)") {
		t.Errorf("-pbar error message unclear: %q", stderr)
	}
	if _, _, err := runCmd(t, bin, "-bench", "p1", "-quantile", "0"); err == nil {
		t.Error("out-of-range -quantile accepted")
	}
}

func TestBufinsJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	bin := buildCmd(t, "./cmd/bufins")
	out, _, err := runCmd(t, bin, "-bench", "p1", "-algo", "nom", "-json", "-print-assignment")
	if err != nil {
		t.Fatalf("bufins -json: %v\n%s", err, out)
	}
	var res struct {
		Bench      string  `json:"bench"`
		Algo       string  `json:"algo"`
		Sinks      int     `json:"sinks"`
		MeanPS     float64 `json:"mean_ps"`
		SigmaPS    float64 `json:"sigma_ps"`
		NumBuffers int     `json:"num_buffers"`
		Assignment []struct {
			Node   int    `json:"node"`
			Buffer string `json:"buffer"`
		} `json:"assignment"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("output is not the insert DTO: %v\n%s", err, out)
	}
	if res.Bench != "p1" || res.Algo != "nom" || res.Sinks != 269 {
		t.Errorf("DTO fields wrong: %+v", res)
	}
	if res.NumBuffers == 0 || len(res.Assignment) != res.NumBuffers {
		t.Errorf("assignment has %d entries, num_buffers %d", len(res.Assignment), res.NumBuffers)
	}
	if res.SigmaPS != 0 {
		t.Errorf("nom run has sigma %g", res.SigmaPS)
	}
}

func TestBenchgenCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	gen := buildCmd(t, "./cmd/benchgen")
	ins := buildCmd(t, "./cmd/bufins")
	out, _, err := runCmd(t, gen, "-sinks", "30", "-seed", "3")
	if err != nil {
		t.Fatalf("benchgen: %v", err)
	}
	if !strings.HasPrefix(out, "tree v1") {
		t.Fatalf("unexpected header: %.40q", out)
	}
	// Feed the generated tree back into bufins via a file.
	f := filepath.Join(t.TempDir(), "net.tree")
	if err := writeFile(f, out); err != nil {
		t.Fatal(err)
	}
	out2, _, err := runCmd(t, ins, "-tree", f, "-algo", "nom")
	if err != nil {
		t.Fatalf("bufins on generated tree: %v\n%s", err, out2)
	}
	if !strings.Contains(out2, "30 sinks") {
		t.Errorf("round trip lost sinks:\n%s", out2)
	}
	// List mode.
	out3, _, err := runCmd(t, gen, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "r5") {
		t.Errorf("list missing presets:\n%s", out3)
	}
	if _, _, err := runCmd(t, gen); err == nil {
		t.Error("benchgen with no mode accepted")
	}
}

func TestExperimentsCLIQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	bin := buildCmd(t, "./cmd/experiments")
	out, _, err := runCmd(t, bin, "-run", "table1")
	if err != nil {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
	if !strings.Contains(out, "6201") {
		t.Errorf("table1 output wrong:\n%s", out)
	}
	out2, _, err := runCmd(t, bin, "-run", "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "P(T1 > T2)") {
		t.Errorf("fig2 output wrong:\n%s", out2)
	}
	if _, _, err := runCmd(t, bin, "-run", "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
