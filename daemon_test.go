package vabuf_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"vabuf"
)

// startVabufd launches the daemon on an ephemeral port and returns its
// process plus the base URL parsed from the startup log line.
func startVabufd(t *testing.T, bin string, extraArgs ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting vabufd: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The daemon logs "vabufd listening on 127.0.0.1:PORT (...)" after
	// binding; everything else on stderr is drained in the background so
	// the process never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			addr, _, _ = strings.Cut(rest, " ")
			break
		}
	}
	if addr == "" {
		t.Fatalf("vabufd never logged its listen address (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderr)
	return cmd, "http://" + addr
}

// waitReady polls GET /readyz until it answers 200 (the daemon may be
// restoring a snapshot right after boot).
func waitReady(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s/readyz never answered 200", baseURL)
}

func postInsert(t *testing.T, baseURL string, req map[string]any) (int, map[string]any) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/insert", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /v1/insert: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("parsing response: %v\n%s", err, raw)
	}
	return resp.StatusCode, out
}

// TestVabufdKillAndRestart is the crash-safe-serving integration test:
// seed the daemon's caches, SIGTERM it (graceful drain writes the final
// snapshot), restart it against the same snapshot file, and check that
// the first request for a previously-seen tree hits both caches.
func TestVabufdKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	bin := buildCmd(t, "./cmd/vabufd")
	snap := filepath.Join(t.TempDir(), "caches.snap")

	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "t8", Sinks: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vabuf.WriteTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"tree": buf.String(), "algo": "wid"}

	cmd1, url1 := startVabufd(t, bin, "-snapshot", snap)
	waitReady(t, url1)
	status, res := postInsert(t, url1, req)
	if status != http.StatusOK {
		t.Fatalf("seed request status %d: %v", status, res)
	}
	if res["tree_cache_hit"] == true {
		t.Fatal("first request on a fresh daemon reported a tree cache hit")
	}

	// Graceful shutdown: drain and write the final snapshot.
	if err := cmd1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd1.Wait(); err != nil {
		t.Fatalf("vabufd exited with %v after SIGTERM", err)
	}

	cmd2, url2 := startVabufd(t, bin, "-snapshot", snap)
	waitReady(t, url2)
	// A quantile-distinct request misses the restored result cache (the
	// seed request's exact bytes would be answered from it verbatim) but
	// still resolves its tree and model through the restored LRUs.
	req["quantile"] = 0.25
	status, res = postInsert(t, url2, req)
	if status != http.StatusOK {
		t.Fatalf("post-restart request status %d: %v", status, res)
	}
	if res["tree_cache_hit"] != true || res["model_cache_hit"] != true {
		t.Errorf("post-restart hits: tree=%v model=%v, want both true (warm restart)",
			res["tree_cache_hit"], res["model_cache_hit"])
	}

	// /metrics on the restarted daemon reports the restore.
	resp, err := http.Get(url2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	snapMet, _ := met["snapshot"].(map[string]any)
	if snapMet == nil || snapMet["restored_trees"].(float64) < 1 {
		t.Errorf("restarted daemon /metrics snapshot block = %v, want restored_trees >= 1", snapMet)
	}

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("restarted vabufd exited with %v after SIGTERM", err)
	}
}

// TestVabufdReadyzDraining checks the probe split: SIGTERM flips /readyz
// to 503 (or closes the listener) while the process drains gracefully.
func TestVabufdReadyzProbes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI tests build binaries")
	}
	bin := buildCmd(t, "./cmd/vabufd")
	_, url := startVabufd(t, bin)
	waitReady(t, url)

	for _, probe := range []struct {
		path string
		want int
	}{{"/healthz", http.StatusOK}, {"/readyz", http.StatusOK}} {
		resp, err := http.Get(url + probe.path)
		if err != nil {
			t.Fatalf("GET %s: %v", probe.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != probe.want {
			t.Errorf("%s = %d, want %d", probe.path, resp.StatusCode, probe.want)
		}
	}
}
