// Yieldstudy: the Tables 3–5 experiment on one benchmark, with Monte-Carlo
// confirmation. Three designs are produced — NOM (deterministic), D2D
// (random + inter-die aware) and WID (fully variation-aware) — and all
// three are measured under the same heterogeneous variation model, both
// analytically (canonical forms) and by sampling (Monte Carlo).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"vabuf"
)

func main() {
	bench := flag.String("bench", "r2", "Table 1 benchmark to study")
	samples := flag.Int("mc", 5000, "Monte-Carlo samples")
	budget := flag.Float64("budget", 0.15, "per-class variation budget")
	flag.Parse()

	tree, err := vabuf.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()

	// The full (WID) model: heterogeneous spatial + inter-die + random.
	widCfg := vabuf.DefaultModelConfig(tree)
	widCfg.Heterogeneous = true
	widCfg.RandomFrac, widCfg.SpatialFrac, widCfg.InterDieFrac = *budget, *budget, *budget
	widModel, err := vabuf.NewVariationModel(widCfg)
	if err != nil {
		log.Fatal(err)
	}
	// The D2D model drops the spatially correlated class.
	d2dCfg := widCfg
	d2dCfg.SpatialFrac = 0
	d2dCfg.Heterogeneous = false
	d2dModel, err := vabuf.NewVariationModel(d2dCfg)
	if err != nil {
		log.Fatal(err)
	}

	nom, err := vabuf.Insert(tree, vabuf.Options{Library: lib})
	if err != nil {
		log.Fatal(err)
	}
	d2d, err := vabuf.Insert(tree, vabuf.Options{Library: lib, Model: d2dModel})
	if err != nil {
		log.Fatal(err)
	}
	wid, err := vabuf.Insert(tree, vabuf.Options{Library: lib, Model: widModel})
	if err != nil {
		log.Fatal(err)
	}

	widRep, err := vabuf.EvaluateYield(tree, lib, wid.Assignment, widModel, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	// §5.3's common target: the WID mean RAT reduced by 10%.
	target := widRep.Mean - 0.10*math.Abs(widRep.Mean)
	fmt.Printf("%s: %d sinks; target RAT %.1f ps (WID mean - 10%%)\n\n",
		*bench, tree.NumSinks(), target)
	fmt.Printf("%-4s %12s %10s %14s %9s %10s %10s\n",
		"algo", "mean (ps)", "sigma", "95%-yield RAT", "buffers", "yield", "MC yield")

	for _, c := range []struct {
		name   string
		assign map[vabuf.NodeID]int
	}{{"NOM", nom.Assignment}, {"D2D", d2d.Assignment}, {"WID", wid.Assignment}} {
		rep, err := vabuf.EvaluateYield(tree, lib, c.assign, widModel, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		// Analytic yield at the target.
		yield := 0.5 * (1 + erf((rep.Mean-target)/(rep.Sigma*math.Sqrt2)))
		// Monte-Carlo yield: fraction of sampled dies meeting the target.
		mc, err := vabuf.MonteCarloRAT(tree, lib, c.assign, widModel, *samples, 7)
		if err != nil {
			log.Fatal(err)
		}
		sort.Float64s(mc)
		met := sort.SearchFloat64s(mc, target)
		mcYield := float64(len(mc)-met) / float64(len(mc))
		fmt.Printf("%-4s %12.1f %10.2f %14.1f %9d %9.1f%% %9.1f%%\n",
			c.name, rep.Mean, rep.Sigma, rep.YieldRAT, rep.NumBuffers,
			100*yield, 100*mcYield)
	}
	fmt.Println("\nNOM ignores variation, D2D misses the spatial component;")
	fmt.Println("both give up yield relative to the fully variation-aware WID design.")
}

func erf(x float64) float64 { return math.Erf(x) }
