// Clockskew: the paper's future-work direction (§6) — applying the same
// 2P machinery to clock-skew minimization. An unbalanced clock net is
// buffered to equalize source-to-sink delays, and the skew distribution
// under process variation is verified with Monte Carlo.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"vabuf"
)

func main() {
	sinks := flag.Int("sinks", 24, "clock net sink count")
	seed := flag.Int64("seed", 11, "placement seed")
	mc := flag.Int("mc", 5000, "Monte-Carlo samples")
	flag.Parse()

	// A random (hence unbalanced) clock net: every sink wants the same
	// arrival time, so the placement spread *is* the skew problem.
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{
		Name: "clk", Sinks: *sinks, Seed: *seed, RATSpread: -1, DieSide: 15000,
	})
	if err != nil {
		log.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()

	bareSkew, bareLat, err := vabuf.PropagateSkew(tree, lib, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clock net: %d sinks; unbuffered skew %.1f ps (latency %.1f ps)\n",
		tree.NumSinks(), bareSkew.Mean(), bareLat.Mean())

	// Deterministic skew minimization.
	det, err := vabuf.MinimizeSkew(tree, vabuf.SkewOptions{Library: lib, LatencyWeight: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic optimum: skew %.1f ps with %d buffers (latency %.1f ps)\n",
		det.SkewMean, det.NumBuffers, det.LatencyMean)

	// Variation-aware skew minimization: minimize the 95%-tile skew.
	cfg := vabuf.DefaultModelConfig(tree)
	cfg.Heterogeneous = true
	cfg.RandomFrac, cfg.SpatialFrac, cfg.InterDieFrac = 0.15, 0.15, 0.15
	model, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stat, err := vabuf.MinimizeSkew(tree, vabuf.SkewOptions{
		Library: lib,
		Model:   model,
		Epsilon: 0.5, // ε-dominance granularity: keeps Pareto fronts tractable
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variation-aware optimum: skew %.1f ± %.1f ps (95%%-tile %.1f) with %d buffers\n",
		stat.SkewMean, stat.SkewSigma, stat.SkewQ, stat.NumBuffers)

	// Monte-Carlo confirmation of the variation-aware design.
	samples, err := vabuf.MonteCarloSkew(tree, lib, stat.Assignment, model, *mc, 3)
	if err != nil {
		log.Fatal(err)
	}
	sort.Float64s(samples)
	mean := 0.0
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	q95 := samples[int(math.Ceil(0.95*float64(len(samples))))-1]
	fmt.Printf("Monte Carlo (%d dies): mean skew %.1f ps, 95%%-tile %.1f ps\n",
		len(samples), mean, q95)

	// The deterministic design under the same variation model, for
	// comparison: ignoring variation costs skew yield.
	detSkew, _, err := vabuf.PropagateSkew(tree, lib, det.Assignment, model)
	if err != nil {
		log.Fatal(err)
	}
	space := model.Space
	detQ := detSkew.Quantile(0.95, space)
	fmt.Printf("deterministic design under variation: skew %.1f ± %.1f ps (95%%-tile %.1f)\n",
		detSkew.Mean(), detSkew.Sigma(space), detQ)
}
