// Prunelab: a close-up of the paper's §2 — why the 2P pruning rule keeps
// the algorithm linear while the 4P partial order explodes. The example
// runs both rules on growing nets with a single buffer type and prints
// candidate statistics side by side, then sketches the Figure 2
// probability curves that justify pruning by mean order.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"time"

	"vabuf"
)

func main() {
	lib := vabuf.DefaultLibrary()[:1] // one buffer type keeps 4P alive longer
	fmt.Println("2P vs 4P pruning on growing nets (single buffer type):")
	fmt.Printf("%6s %12s %12s %14s %14s\n", "sinks", "2P time", "4P time", "2P generated", "4P generated")
	for _, sinks := range []int{8, 16, 32, 64, 128} {
		tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{
			Name: "prunelab", Sinks: sinks, Seed: int64(100 + sinks),
		})
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%6d", sinks)
		var gen2 string
		t2, g2, err := timeRun(tree, lib, vabuf.Rule2P)
		if err != nil {
			log.Fatal(err)
		}
		row += fmt.Sprintf(" %11.4fs", t2.Seconds())
		gen2 = fmt.Sprintf("%14d", g2)
		t4, g4, err := timeRun(tree, lib, vabuf.Rule4P)
		switch {
		case err == nil:
			row += fmt.Sprintf(" %11.4fs", t4.Seconds())
		case errors.Is(err, vabuf.ErrCapacity) || errors.Is(err, vabuf.ErrTimeout):
			row += fmt.Sprintf(" %12s", "-")
		default:
			log.Fatal(err)
		}
		row += gen2
		if err == nil {
			row += fmt.Sprintf(" %14d", g4)
		} else {
			row += fmt.Sprintf(" %14s", "(exceeded)")
		}
		fmt.Println(row)
	}

	fmt.Println("\nFigure 2: P(T1 > T2) as the mean gap grows (correlation helps!):")
	fmt.Printf("%10s", "mean gap")
	for _, rho := range []float64{0, 0.5, 0.9} {
		fmt.Printf("   rho=%.1f", rho)
	}
	fmt.Println()
	for _, gap := range []float64{0, 1, 2, 4, 8} {
		fmt.Printf("%10.1f", gap)
		for _, rho := range []float64{0, 0.5, 0.9} {
			// Unit sigmas; eq. 8 of the paper.
			p := probGreater(gap, rho)
			fmt.Printf("   %6.3f ", p)
		}
		fmt.Println()
	}
	fmt.Println("\nwith high correlation a tiny mean edge is already near-certain dominance,")
	fmt.Println("which is why pruning by mean order (pbar = 0.5) loses almost nothing in practice.")
}

func timeRun(tree *vabuf.Tree, lib vabuf.Library, rule vabuf.Rule) (time.Duration, int64, error) {
	cfg := vabuf.DefaultModelConfig(tree)
	cfg.RandomFrac, cfg.SpatialFrac, cfg.InterDieFrac = 0.15, 0.15, 0.15
	model, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	res, err := vabuf.Insert(tree, vabuf.Options{
		Library:       lib,
		Model:         model,
		Rule:          rule,
		MaxCandidates: 2_000_000,
		Timeout:       30 * time.Second,
	})
	if err != nil {
		return 0, 0, err
	}
	return time.Since(t0), res.Stats.Generated, nil
}

// probGreater is eq. 8 for unit sigmas: Phi(gap / sqrt(2 - 2 rho)).
func probGreater(gap, rho float64) float64 {
	sd := 2 - 2*rho
	if sd <= 0 {
		if gap > 0 {
			return 1
		}
		return 0.5
	}
	x := gap / math.Sqrt(sd)
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
