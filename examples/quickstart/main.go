// Quickstart: generate a small routing tree, run deterministic and
// variation-aware buffer insertion, and compare what the variation-aware
// algorithm buys in timing yield.
package main

import (
	"fmt"
	"log"

	"vabuf"
)

func main() {
	// A 100-sink random routing tree on an auto-sized die.
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{
		Name:  "quickstart",
		Sinks: 100,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("net: %d sinks, %d legal buffer positions, %.1f mm of wire\n",
		tree.NumSinks(), tree.NumBufferPositions(), tree.TotalWireLength()/1000)

	lib := vabuf.DefaultLibrary()

	// Deterministic van Ginneken: maximize the nominal required arrival
	// time, ignoring process variation.
	nom, err := vabuf.Insert(tree, vabuf.Options{Library: lib})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NOM: nominal RAT %.1f ps with %d buffers\n", nom.Mean, nom.NumBuffers)

	// Variation-aware insertion: the paper's 2P algorithm under the full
	// process-variation model (random + spatial + inter-die).
	cfg := vabuf.DefaultModelConfig(tree)
	cfg.Heterogeneous = true
	cfg.RandomFrac, cfg.SpatialFrac, cfg.InterDieFrac = 0.15, 0.15, 0.15
	model, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wid, err := vabuf.Insert(tree, vabuf.Options{Library: lib, Model: model})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WID: RAT %.1f ± %.1f ps with %d buffers (95%%-yield RAT %.1f ps)\n",
		wid.Mean, wid.Sigma, wid.NumBuffers, wid.Objective)

	// Evaluate BOTH designs under the same full variation model: the
	// deterministic design loses timing yield it never knew about.
	for _, c := range []struct {
		name   string
		assign map[vabuf.NodeID]int
	}{{"NOM", nom.Assignment}, {"WID", wid.Assignment}} {
		rep, err := vabuf.EvaluateYield(tree, lib, c.assign, model, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("under variation, %s design: mean %.1f ps, sigma %.1f ps, 95%%-yield RAT %.1f ps\n",
			c.name, rep.Mean, rep.Sigma, rep.YieldRAT)
	}
}
