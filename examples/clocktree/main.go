// Clocktree: the paper's footnote-4 capacity demonstration. Build an
// H-tree clock network with 4^levels sinks and run the full
// variation-aware 2P optimization on it — at eight levels that is 65,536
// sinks, the "largest benchmark we have tested in house".
//
// Run with -levels 8 for the full footnote-4 network (takes a few tens of
// seconds); the default of 6 (4,096 sinks) finishes in about a second.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"vabuf"
)

func main() {
	levels := flag.Int("levels", 6, "H-tree levels (sinks = 4^levels)")
	flag.Parse()

	tree, err := vabuf.GenerateHTree(*levels, 10000, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H-tree: %d levels, %d sinks, %d nodes, %.1f mm of wire\n",
		*levels, tree.NumSinks(), tree.Len(), tree.TotalWireLength()/1000)

	cfg := vabuf.DefaultModelConfig(tree)
	cfg.RandomFrac, cfg.SpatialFrac, cfg.InterDieFrac = 0.15, 0.15, 0.15
	model, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	res, err := vabuf.Insert(tree, vabuf.Options{
		Library: vabuf.DefaultLibrary(),
		Model:   model,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(t0)

	fmt.Printf("WID 2P optimization: %.2fs\n", elapsed.Seconds())
	fmt.Printf("inserted %d buffers; clock-source RAT %.1f ± %.2f ps\n",
		res.NumBuffers, res.Mean, res.Sigma)
	fmt.Printf("candidates: %d generated, %d pruned, peak list %d — the linear-complexity claim in action\n",
		res.Stats.Generated, res.Stats.Pruned, res.Stats.PeakList)

	// H-trees are perfectly symmetric, so the variation-aware solution
	// should buffer symmetrically too: count buffers per library size.
	counts := make(map[int]int)
	for _, bi := range res.Assignment {
		counts[bi]++
	}
	for bi, n := range counts {
		fmt.Printf("  %s: %d instances\n", vabuf.DefaultLibrary()[bi].Name, n)
	}
}
