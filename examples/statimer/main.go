// Statimer: block-based statistical static timing analysis — the SSTA
// substrate the paper's variation model was developed for (refs [1], [3]).
// A random combinational block is timed under correlated process
// variation: arrival times propagate as canonical forms with statistical
// MAX at reconvergence, and the analytic yield-versus-clock curve is
// cross-checked against Monte Carlo.
package main

import (
	"cmp"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"slices"

	"vabuf"
	"vabuf/internal/variation"
)

func main() {
	layers := flag.Int("layers", 8, "logic depth")
	width := flag.Int("width", 6, "gates per layer")
	mc := flag.Int("mc", 20000, "Monte-Carlo samples")
	flag.Parse()

	// Variation sources: one global (inter-die) source every gate shares,
	// plus a private random source per gate.
	space := variation.NewSpace()
	global := space.Add(variation.ClassInterDie, 1, "G")
	rng := rand.New(rand.NewSource(7))

	g := vabuf.NewTimingGraph()
	prev := make([]vabuf.TimingPin, *width)
	for i := range prev {
		prev[i] = g.AddPin(fmt.Sprintf("in%d", i))
	}
	gates := 0
	for l := 0; l < *layers; l++ {
		cur := make([]vabuf.TimingPin, *width)
		for i := range cur {
			cur[i] = g.AddPin(fmt.Sprintf("g%d_%d", l, i))
			for j := range prev {
				if rng.Float64() < 0.5 {
					// Gate delay ~ N(nominal, 8% global + 5% random).
					nominal := 20 + 15*rng.Float64()
					private := space.Add(variation.ClassRandom, 1, "x")
					delay := variation.NewForm(nominal, []variation.Term{
						{ID: global, Coef: 0.08 * nominal},
						{ID: private, Coef: 0.05 * nominal},
					})
					if err := g.AddArc(prev[j], cur[i], delay); err != nil {
						log.Fatal(err)
					}
					gates++
				}
			}
		}
		prev = cur
	}
	fmt.Printf("block: %d pins, %d timing arcs, depth %d\n", g.NumPins(), gates, *layers)

	res, err := vabuf.AnalyzeTiming(g, nil, nil, space)
	if err != nil {
		log.Fatal(err)
	}
	// Worst arrival across outputs = -WNS with zero required times.
	worst := res.WNS.Scale(-1)
	fmt.Printf("statistical critical delay: %.1f ± %.1f ps\n",
		worst.Mean(), worst.Sigma(space))

	// Endpoint criticalities.
	fmt.Println("endpoint criticalities:")
	outs := g.Outputs()
	slices.SortFunc(outs, func(a, b vabuf.TimingPin) int {
		return cmp.Compare(res.EndpointCriticality[b], res.EndpointCriticality[a])
	})
	for _, o := range outs[:min(4, len(outs))] {
		fmt.Printf("  %-8s %.1f%%\n", g.Pin(o).Name, 100*res.EndpointCriticality[o])
	}

	// Yield vs clock period: analytic (normal) vs Monte Carlo.
	samples, err := vabuf.MonteCarloTiming(g, nil, space, *mc, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Per-sample critical delay = max over outputs.
	crit := make([]float64, *mc)
	for s := range crit {
		worstS := 0.0
		for o := range samples {
			if samples[o][s] > worstS {
				worstS = samples[o][s]
			}
		}
		crit[s] = worstS
	}
	slices.Sort(crit)
	fmt.Println("\nclock period ->  analytic yield | Monte-Carlo yield")
	mean := worst.Mean()
	for _, f := range []float64{0.95, 1.0, 1.05, 1.10} {
		period := mean * f
		analytic := yieldAt(worst, space, period)
		met, _ := slices.BinarySearch(crit, period)
		mcYield := float64(met) / float64(len(crit))
		fmt.Printf("  %7.1f ps   ->  %6.1f%%        | %6.1f%%\n",
			period, 100*analytic, 100*mcYield)
	}
}

// yieldAt returns P(critical delay <= period) under the normal model.
func yieldAt(worst vabuf.Form, space *vabuf.VariationSpace, period float64) float64 {
	sigma := worst.Sigma(space)
	if sigma == 0 {
		if worst.Mean() <= period {
			return 1
		}
		return 0
	}
	z := (period - worst.Mean()) / sigma
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}
