package vabuf_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"vabuf"
	"vabuf/internal/stats"
)

// fullModel builds the WID model at the headline budget via the public API.
func fullModel(t testing.TB, tree *vabuf.Tree) *vabuf.VariationModel {
	t.Helper()
	cfg := vabuf.DefaultModelConfig(tree)
	cfg.Heterogeneous = true
	cfg.RandomFrac, cfg.SpatialFrac, cfg.InterDieFrac = 0.15, 0.15, 0.15
	m, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEndToEndPublicAPI walks the full public workflow: generate, optimize
// deterministically and under variation, evaluate both designs under the
// same model, and confirm with Monte Carlo.
func TestEndToEndPublicAPI(t *testing.T) {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "e2e", Sinks: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	model := fullModel(t, tree)

	nom, err := vabuf.Insert(tree, vabuf.Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	wid, err := vabuf.Insert(tree, vabuf.Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}

	nomRep, err := vabuf.EvaluateYield(tree, lib, nom.Assignment, model, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	widRep, err := vabuf.EvaluateYield(tree, lib, wid.Assignment, model, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core claim: under the true variation model the
	// variation-aware design wins at the yield quantile. Because the 2P
	// rule prunes by MEAN order (Lemma 4), the quantile-optimal candidate
	// can occasionally be pruned mid-tree, so the win is a strong tendency
	// rather than a per-instance guarantee — allow a 1% margin.
	if nomRep.YieldRAT > widRep.YieldRAT+0.01*math.Abs(widRep.YieldRAT) {
		t.Errorf("NOM yield-RAT %.2f beats WID %.2f by more than 1%%",
			nomRep.YieldRAT, widRep.YieldRAT)
	}
	// Monte Carlo agrees with the canonical model for the WID design.
	samples, err := vabuf.MonteCarloRAT(tree, lib, wid.Assignment, model, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, v := stats.MeanVar(samples)
	if math.Abs(mean-widRep.Mean) > 0.01*math.Abs(widRep.Mean) {
		t.Errorf("MC mean %.2f vs canonical %.2f", mean, widRep.Mean)
	}
	if widRep.Sigma > 0 && math.Abs(math.Sqrt(v)-widRep.Sigma)/widRep.Sigma > 0.15 {
		t.Errorf("MC sigma %.2f vs canonical %.2f", math.Sqrt(v), widRep.Sigma)
	}
	// PropagateRAT is consistent with the report.
	rat, err := vabuf.PropagateRAT(tree, lib, wid.Assignment, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rat.Mean()-widRep.Mean) > 1e-9 {
		t.Errorf("PropagateRAT mean %.4f vs report %.4f", rat.Mean(), widRep.Mean)
	}
}

// TestSegmentizeOnlyHelps verifies the van Ginneken property that extra
// legal buffer positions can never hurt the optimum.
func TestSegmentizeOnlyHelps(t *testing.T) {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "seg", Sinks: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	base, err := vabuf.Insert(tree, vabuf.Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := vabuf.SegmentizeTree(tree, 200)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := vabuf.Insert(fine, vabuf.Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Mean < base.Mean-1e-9 {
		t.Errorf("more buffer positions made the optimum worse: %.3f vs %.3f",
			refined.Mean, base.Mean)
	}
}

// TestTreeSerializationRoundTrip exercises the facade I/O with a
// re-optimization after the round trip.
func TestTreeSerializationRoundTrip(t *testing.T) {
	tree, err := vabuf.GenerateBenchmark("p1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vabuf.WriteTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := vabuf.ReadTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	a, err := vabuf.Insert(tree, vabuf.Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	b, err := vabuf.Insert(back, vabuf.Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.NumBuffers != b.NumBuffers {
		t.Errorf("round-tripped tree optimizes differently: %.3f/%d vs %.3f/%d",
			a.Mean, a.NumBuffers, b.Mean, b.NumBuffers)
	}
}

// TestFacadeErrorsSurface checks the sentinel errors through the facade.
func TestFacadeErrorsSurface(t *testing.T) {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "err", Sinks: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	model := fullModel(t, tree)
	_, err = vabuf.Insert(tree, vabuf.Options{
		Library:       vabuf.DefaultLibrary(),
		Model:         model,
		Rule:          vabuf.Rule4P,
		MaxCandidates: 100,
	})
	if !errors.Is(err, vabuf.ErrCapacity) {
		t.Errorf("want ErrCapacity through the facade, got %v", err)
	}
}

// TestEvaluateFacade checks the raw Elmore entry point.
func TestEvaluateFacade(t *testing.T) {
	tree := vabuf.NewTree(vabuf.DefaultWire, 0.5, vabuf.Point{})
	tree.AddSink(tree.Root, vabuf.Point{X: 100, Y: 0}, 100, 10, 0)
	rat, load, err := vabuf.Evaluate(tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if load != 30 {
		t.Errorf("root load = %g, want 30", load)
	}
	if math.Abs(rat-(-15.2)) > 1e-9 {
		t.Errorf("root RAT = %g, want -15.2", rat)
	}
}

// TestCriticalityFacade checks that the criticality map covers every sink
// and concentrates on low-RAT ones.
func TestCriticalityFacade(t *testing.T) {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "crit", Sinks: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	model := fullModel(t, tree)
	res, err := vabuf.Insert(tree, vabuf.Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	crit, err := vabuf.SinkCriticality(tree, lib, res.Assignment, model)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range crit {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("criticalities sum to %g", sum)
	}
}

// TestParallelMCFacade exercises the parallel Monte Carlo through the
// public API.
func TestParallelMCFacade(t *testing.T) {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "pmc", Sinks: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	model := fullModel(t, tree)
	res, err := vabuf.Insert(tree, vabuf.Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	a, err := vabuf.MonteCarloRATParallel(tree, lib, res.Assignment, model, 500, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vabuf.MonteCarloRATParallel(tree, lib, res.Assignment, model, 500, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel MC not deterministic across worker counts")
		}
	}
}

// TestSkewFacade runs the skew minimizer through the public API.
func TestSkewFacade(t *testing.T) {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{
		Name: "skewf", Sinks: 10, Seed: 8, RATSpread: -1, DieSide: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	res, err := vabuf.MinimizeSkew(tree, vabuf.SkewOptions{Library: lib, LatencyWeight: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	skewForm, _, err := vabuf.PropagateSkew(tree, lib, res.Assignment, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(skewForm.Mean()-res.SkewMean) > 1e-6 {
		t.Errorf("facade skew propagation %.3f != result %.3f", skewForm.Mean(), res.SkewMean)
	}
}

// TestTimingFacade drives the SSTA substrate through the public API.
func TestTimingFacade(t *testing.T) {
	g := vabuf.NewTimingGraph()
	in := g.AddPin("in")
	out := g.AddPin("out")
	if err := g.AddArc(in, out, vabuf.ConstForm(42)); err != nil {
		t.Fatal(err)
	}
	space := &vabuf.VariationSpace{}
	res, err := vabuf.AnalyzeTiming(g, nil, nil, space)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival[out].Mean() != 42 {
		t.Errorf("arrival = %g", res.Arrival[out].Mean())
	}
	samples, err := vabuf.MonteCarloTiming(g, nil, space, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0][0] != 42 {
		t.Errorf("MC timing = %v", samples)
	}
}

// TestInverterFacade runs polarity-aware insertion through the facade.
func TestInverterFacade(t *testing.T) {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "invf", Sinks: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lib := append(vabuf.DefaultLibrary(), vabuf.InverterLibrary()...)
	res, err := vabuf.Insert(tree, vabuf.Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	// Parity: every root-to-sink path sees an even number of inversions.
	for _, sink := range tree.Sinks() {
		count := 0
		for id := sink; id >= 0; id = tree.Node(id).Parent {
			if bi, ok := res.Assignment[id]; ok && lib[bi].Inverting {
				count++
			}
		}
		if count%2 != 0 {
			t.Fatalf("sink %d sees odd inversion count %d", sink, count)
		}
	}
}

// TestHTreeFacade smoke-tests the clock-network generator via the facade.
func TestHTreeFacade(t *testing.T) {
	tree, err := vabuf.GenerateHTree(3, 8000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumSinks() != 64 {
		t.Errorf("sinks = %d", tree.NumSinks())
	}
	res, err := vabuf.Insert(tree, vabuf.Options{Library: vabuf.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBuffers == 0 {
		t.Error("no buffers inserted")
	}
}
