package vabuf_test

import (
	"fmt"
	"log"

	"vabuf"
)

// The Table 1 benchmarks are generated with fixed seeds, so their
// characteristics are stable.
func ExampleGenerateBenchmark() {
	tree, err := vabuf.GenerateBenchmark("r3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.NumSinks(), tree.NumBufferPositions())
	// Output: 862 1723
}

// Deterministic van Ginneken insertion: the classic baseline.
func ExampleInsert() {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "demo", Sinks: 25, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := vabuf.Insert(tree, vabuf.Options{Library: vabuf.DefaultLibrary()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.NumBuffers > 0, res.Sigma == 0)
	// Output: true true
}

// Variation-aware insertion returns the RAT as a distribution.
func ExampleInsert_variationAware() {
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "demo", Sinks: 25, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cfg := vabuf.DefaultModelConfig(tree)
	model, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := vabuf.Insert(tree, vabuf.Options{
		Library: vabuf.DefaultLibrary(),
		Model:   model,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Sigma > 0, res.Objective < res.Mean)
	// Output: true true
}

// The H-tree generator builds 4^levels perfectly symmetric sinks.
func ExampleGenerateHTree() {
	tree, err := vabuf.GenerateHTree(4, 8000, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tree.NumSinks())
	// Output: 256
}
