// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each BenchmarkTableN / BenchmarkFigureN runs the
// corresponding experiment end to end at a downsized configuration so the
// whole suite completes in minutes; `cmd/experiments` runs the full-size
// versions recorded in EXPERIMENTS.md. Additional micro-benchmarks time
// the DP engines themselves on the Table 1 presets.
package vabuf_test

import (
	"io"
	"testing"

	"vabuf"
	"vabuf/internal/experiments"
)

// benchCfg is the downsized configuration for the table/figure benchmarks.
func benchCfg() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.Benches = []string{"p1", "r1"}
	cfg.MCSamples = 2000
	cfg.FourPTimeout = 5e9 // 5s
	cfg.HTreeLevels = 4
	return cfg
}

func BenchmarkTable1Characteristics(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable1(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2FourPVersus2P(b *testing.B) {
	cfg := benchCfg()
	cfg.Benches = []string{"p1"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable2(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3HeterogeneousYield(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.YieldComparison(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable34(io.Discard, rows, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4HomogeneousYield(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.YieldComparison(cfg, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable34(io.Discard, rows, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5BufferCounts(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.YieldComparison(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderTable5(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2ProbabilityCurves(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFigure2(io.Discard, curves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3DeviceFit(b *testing.B) {
	cfg := benchCfg()
	cfg.MCSamples = 1500 // -> 300 device simulations
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFigure3(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5RuntimeScaling(b *testing.B) {
	cfg := benchCfg()
	cfg.Benches = []string{"p1", "r1", "r2"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFigure5(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6ModelVersusMC(b *testing.B) {
	cfg := benchCfg()
	cfg.Benches = []string{"r1"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFigure6(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPbarSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PbarSweep(cfg, "p1")
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderPbarSweep(io.Discard, "p1", rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCapacityHTree(b *testing.B) {
	cfg := benchCfg()
	cfg.HTreeLevels = 5 // 1024 sinks per iteration
	for i := 0; i < b.N; i++ {
		res, err := experiments.CapacityHTree(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderCapacity(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBudget(b *testing.B) {
	cfg := benchCfg()
	cfg.Benches = []string{"r1"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BudgetAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderBudgetAblation(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWireSizing(b *testing.B) {
	cfg := benchCfg()
	cfg.Benches = []string{"r1"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WireSizingAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderWireSizing(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInverters(b *testing.B) {
	cfg := benchCfg()
	cfg.Benches = []string{"r1"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.InverterAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderInverterAblation(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMinVariance(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MinVarianceAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderMinVariance(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionSkew(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SkewExtension(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderSkewExtension(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloSerial(b *testing.B) {
	tree, model, lib, assign := mcSetup(b, "r1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vabuf.MonteCarloRAT(tree, lib, assign, model, 2000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloParallel(b *testing.B) {
	tree, model, lib, assign := mcSetup(b, "r1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vabuf.MonteCarloRATParallel(tree, lib, assign, model, 2000, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMCr3 pits the adaptive sampler against its own full budget on the
// r3 buffered tree: tol > 0 stops at a 1% relative CI half-width on the
// 5% quantile, tol = 0 burns every sample. The "samples" metric is the
// early-stopping signal scripts/bench.sh snapshots into BENCH_core.json.
func benchMCr3(b *testing.B, tol float64) {
	tree, model, lib, assign := mcSetup(b, "r3")
	const budget = 32768
	var samples int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, est, err := vabuf.MonteCarloRATAdaptive(tree, lib, assign, model, vabuf.MCAdaptiveOptions{
			MaxSamples: budget,
			Seed:       1,
			Quantile:   0.05,
			Tol:        tol,
		})
		if err != nil {
			b.Fatal(err)
		}
		if tol > 0 && !est.Converged {
			b.Fatalf("no convergence to tol %g within %d samples", tol, budget)
		}
		samples = est.Samples
	}
	b.ReportMetric(float64(samples), "samples")
}

func BenchmarkMCR3Adaptive(b *testing.B) { benchMCr3(b, 0.01) }
func BenchmarkMCR3Fixed(b *testing.B)    { benchMCr3(b, 0) }

func mcSetup(b *testing.B, bench string) (*vabuf.Tree, *vabuf.VariationModel, vabuf.Library, map[vabuf.NodeID]int) {
	b.Helper()
	tree, err := vabuf.GenerateBenchmark(bench)
	if err != nil {
		b.Fatal(err)
	}
	cfg := vabuf.DefaultModelConfig(tree)
	cfg.Heterogeneous = true
	cfg.RandomFrac, cfg.SpatialFrac, cfg.InterDieFrac = 0.15, 0.15, 0.15
	model, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	res, err := vabuf.Insert(tree, vabuf.Options{Library: lib, Model: model})
	if err != nil {
		b.Fatal(err)
	}
	return tree, model, lib, res.Assignment
}

// --- micro-benchmarks of the DP engines on the Table 1 presets ---

func benchInsert(b *testing.B, bench string, variationAware bool) {
	benchInsertP(b, bench, variationAware, 0)
}

// benchInsertP pins the engine parallelism: 1 is the serial baseline, >1
// exercises the subtree worker pool (results are identical either way).
func benchInsertP(b *testing.B, bench string, variationAware bool, parallelism int) {
	tree, err := vabuf.GenerateBenchmark(bench)
	if err != nil {
		b.Fatal(err)
	}
	lib := vabuf.DefaultLibrary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := vabuf.Options{Library: lib, Parallelism: parallelism}
		if variationAware {
			b.StopTimer()
			cfg := vabuf.DefaultModelConfig(tree)
			cfg.Heterogeneous = true
			cfg.RandomFrac, cfg.SpatialFrac, cfg.InterDieFrac = 0.15, 0.15, 0.15
			model, err := vabuf.NewVariationModel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			opts.Model = model
			b.StartTimer()
		}
		res, err := vabuf.Insert(tree, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.NumBuffers == 0 {
			b.Fatal("no buffers inserted")
		}
	}
}

func BenchmarkInsertNOMp1(b *testing.B) { benchInsert(b, "p1", false) }
func BenchmarkInsertNOMr3(b *testing.B) { benchInsert(b, "r3", false) }
func BenchmarkInsertNOMr5(b *testing.B) { benchInsert(b, "r5", false) }
func BenchmarkInsertWIDp1(b *testing.B) { benchInsert(b, "p1", true) }
func BenchmarkInsertWIDr3(b *testing.B) { benchInsert(b, "r3", true) }
func BenchmarkInsertWIDr5(b *testing.B) { benchInsert(b, "r5", true) }

// Serial/parallel pairs on the multi-sink benchmarks: the scripts/bench.sh
// snapshot tracks their ratio as the parallel-speedup signal.
func BenchmarkInsertWIDr3Serial(b *testing.B) { benchInsertP(b, "r3", true, 1) }
func BenchmarkInsertWIDr3Par4(b *testing.B)   { benchInsertP(b, "r3", true, 4) }
func BenchmarkInsertWIDr5Serial(b *testing.B) { benchInsertP(b, "r5", true, 1) }
func BenchmarkInsertWIDr5Par4(b *testing.B)   { benchInsertP(b, "r5", true, 4) }
