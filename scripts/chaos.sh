#!/usr/bin/env sh
# scripts/chaos.sh — chaos soak: boot 3 vabufd instances that misbehave
# on purpose (7% injected 500s, 3% connection resets, 5% latency spikes
# up to 150ms, seeded PRNG so the run is reproducible) behind one vabufr
# with hedging enabled, then drive 120 distinct interactive inserts and
# assert the resilience envelopes from DESIGN.md §13:
#
#   1. client-visible success rate >= 99% — the failover walk plus the
#      retry budget absorb single-backend faults, whether they surface
#      as structured 500s or as mid-flight resets (EOF, a crashed
#      backend);
#   2. backend attempts <= 1.15x client requests — budgeted retries and
#      hedges bound amplification instead of multiplying the outage
#      (fills and lookups are disabled so the envelope isolates the
#      retry/hedge path);
#   3. a request arriving with its deadline already spent is answered
#      504 at the router without one backend attempt — an expired
#      request never reaches a DP worker;
#   4. backend goroutine counts return to a flat envelope after the
#      soak — faulted and hedged requests do not leak goroutines;
#   5. truncated and stalled NDJSON streams (the faults only a
#      multi-write response can suffer) are recovered by bounded client
#      retries of the adaptive yield stream — every stream delivers its
#      result event, and a stall never wedges a stream past its
#      read timeout.
#
# Used as a CI step; exits non-zero on any failure.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=""
cleanup() {
  # shellcheck disable=SC2086
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
  # Give the processes a beat to exit so rm does not race their final
  # snapshot/log writes; a leftover tmp dir must not fail the run.
  sleep 1
  rm -rf "$TMP" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

go build -o "$TMP/vabufd" ./cmd/vabufd
go build -o "$TMP/vabufr" ./cmd/vabufr

# Boot 3 faulty backends. Each gets its own chaos seed so the fault
# streams are independent but the whole run is reproducible.
BACKENDS=""
for i in 1 2 3; do
  "$TMP/vabufd" -addr 127.0.0.1:0 -instance "c$i" -epoch chaos-soak \
    -snapshot "$TMP/c$i.snap" -workers 2 \
    -chaos "seed=$((i+10)),error=0.07,reset=0.03,latency=0.05:150ms" >"$TMP/d$i.log" 2>&1 &
  PIDS="$PIDS $!"
done
for i in 1 2 3; do
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*vabufd listening on \([^ ]*\).*/\1/p' "$TMP/d$i.log" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "chaos: vabufd c$i never logged its address" >&2
    cat "$TMP/d$i.log" >&2
    exit 1
  fi
  eval "ADDR$i=$ADDR"
  BACKENDS="$BACKENDS,http://$ADDR"
done
BACKENDS=${BACKENDS#,}

# The router hedges interactive requests stuck past 250ms — above the
# injected latency ceiling, so hedges only rescue genuinely wedged
# requests instead of racing every spike (which would spend the
# amplification envelope on latency the failover walk already covers) —
# and keeps the default retry budget. Fills and lookups are off (see
# header).
"$TMP/vabufr" -addr 127.0.0.1:0 -backends "$BACKENDS" \
  -probe-every 200ms -fail-after 1 -recover-after 1 \
  -hedge-after 250ms -fill-queue -1 -lookup-timeout -1s >"$TMP/r.log" 2>&1 &
PIDS="$PIDS $!"
ROUTER=""
for _ in $(seq 1 100); do
  ROUTER=$(sed -n 's/.*vabufr listening on \([^ ]*\).*/\1/p' "$TMP/r.log" | head -1)
  [ -n "$ROUTER" ] && break
  sleep 0.1
done
if [ -z "$ROUTER" ]; then
  echo "chaos: vabufr never logged its address" >&2
  cat "$TMP/r.log" >&2
  exit 1
fi
for _ in $(seq 1 100); do
  curl -fsS "http://$ROUTER/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ROUTER/readyz" >/dev/null

# metric NAME URL — read one integer gauge/counter from a /metrics body.
metric() {
  curl -fsS "http://$2/metrics" \
    | sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" | head -1
}

# Goroutine baseline per backend, after boot but before load.
for i in 1 2 3; do
  eval "G0_$i=\$(metric goroutines \$ADDR$i)"
done

# --- Envelope 3 first (while attempts_total is provably zero): a spent
# deadline never becomes a backend attempt.
CODE=$(curl -sS -o "$TMP/spent.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' -H 'Vabuf-Deadline-Ms: 0' \
  -d '{"bench":"p1","algo":"nom"}' "http://$ROUTER/v1/insert")
if [ "$CODE" != "504" ]; then
  echo "chaos: spent-deadline insert answered $CODE, want 504" >&2
  cat "$TMP/spent.json" >&2
  exit 1
fi
REJECTED=$(metric rejected_total "$ROUTER")
if [ "${REJECTED:-0}" -lt 1 ]; then
  echo "chaos: router deadline rejected_total = '${REJECTED:-?}', want >= 1" >&2
  exit 1
fi
ATTEMPTS0=$(metric attempts_total "$ROUTER")
if [ "${ATTEMPTS0:-0}" -ne 0 ]; then
  echo "chaos: spent-deadline request caused $ATTEMPTS0 backend attempt(s)" >&2
  exit 1
fi

# --- Soak: 120 distinct interactive inserts (pbar is fingerprinted, so
# each value is its own key; core requires pbar in [0.5, 1)).
N=120
OK=0
for P in $(awk 'BEGIN{for(i=0;i<120;i++) printf "0.%03d ", 501+i}'); do
  CODE=$(curl -sS -o /dev/null -w '%{http_code}' --max-time 30 \
    -H 'Content-Type: application/json' \
    -d "{\"bench\":\"p1\",\"algo\":\"nom\",\"pbar\":$P}" \
    "http://$ROUTER/v1/insert" || echo 000)
  [ "$CODE" = "200" ] && OK=$((OK + 1))
done

# Envelope 1: success rate >= 99% (119/120).
if [ "$OK" -lt 119 ]; then
  echo "chaos: $OK/$N inserts succeeded under 10% faults, want >= 119" >&2
  curl -fsS "http://$ROUTER/metrics" >&2 || true
  exit 1
fi

# Envelope 2: amplification. attempts_total counts every outbound
# request send (first tries, budgeted retries, hedges).
ATTEMPTS=$(metric attempts_total "$ROUTER")
LIMIT=$((N * 115 / 100))
if [ -z "$ATTEMPTS" ] || [ "$ATTEMPTS" -lt "$N" ] || [ "$ATTEMPTS" -gt "$LIMIT" ]; then
  echo "chaos: $ATTEMPTS backend attempts for $N requests, want [$N, $LIMIT]" >&2
  curl -fsS "http://$ROUTER/metrics" >&2 || true
  exit 1
fi

# Envelope 4: goroutine counts settle back into a flat envelope. The
# slack absorbs idle HTTP keep-alive conns; growth proportional to the
# 120-request soak would blow well past it.
sleep 2
for i in 1 2 3; do
  G1=$(metric goroutines "$(eval echo "\$ADDR$i")")
  G0=$(eval echo "\$G0_$i")
  if [ -z "$G1" ] || [ "$G1" -gt $((G0 + 20)) ]; then
    echo "chaos: backend c$i goroutines grew $G0 -> ${G1:-?} over the soak" >&2
    exit 1
  fi
done

# --- Envelope 5: stream faults. A 4th backend injects truncate (the
# connection dies after the first NDJSON event) and stall (the writer
# freezes 300ms mid-stream, a slow-read backend). Both only fire on
# responses with more than one body write — exactly what the adaptive
# yield stream produces, one progress event per committed Monte-Carlo
# shard. A mid-stream fault cannot be replayed transparently (the client
# already consumed part of the event stream; see the router's stream
# proxy), so the envelope is bounded client retries: every stream must
# deliver its result event within 4 attempts, stalls must clear inside
# the read timeout, and the fault injection must demonstrably fire.
"$TMP/vabufd" -addr 127.0.0.1:0 -instance c4 -epoch chaos-soak \
  -snapshot "$TMP/c4.snap" -workers 2 \
  -chaos "seed=44,truncate=0.15,stall=0.05:300ms" >"$TMP/d4.log" 2>&1 &
PIDS="$PIDS $!"
ADDR4=""
for _ in $(seq 1 100); do
  ADDR4=$(sed -n 's/.*vabufd listening on \([^ ]*\).*/\1/p' "$TMP/d4.log" | head -1)
  [ -n "$ADDR4" ] && break
  sleep 0.1
done
if [ -z "$ADDR4" ]; then
  echo "chaos: vabufd c4 never logged its address" >&2
  cat "$TMP/d4.log" >&2
  exit 1
fi
for _ in $(seq 1 100); do
  curl -fsS "http://$ADDR4/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done

M=40
RETRIED=0
for P in $(awk 'BEGIN{for(i=0;i<40;i++) printf "0.%03d ", 701+i}'); do
  DONE=""
  for _ in 1 2 3 4; do
    if curl -sS -N --max-time 30 -H 'Content-Type: application/json' \
      -d "{\"bench\":\"p1\",\"algo\":\"wid\",\"pbar\":$P,\"monte_carlo\":4000,\"mc_tol\":0.0001,\"parallelism\":1}" \
      "http://$ADDR4/v1/yield:stream" 2>/dev/null | grep -q '"type":"result"'; then
      DONE=1
      break
    fi
    RETRIED=$((RETRIED + 1))
  done
  if [ -z "$DONE" ]; then
    echo "chaos: stream pbar=$P never delivered a result in 4 attempts" >&2
    exit 1
  fi
done
if [ "$RETRIED" -lt 1 ]; then
  echo "chaos: stream soak saw zero retries — truncate faults never fired" >&2
  exit 1
fi
G1=$(metric goroutines "$ADDR4")
if [ -z "$G1" ] || [ "$G1" -gt 60 ]; then
  echo "chaos: stream backend c4 at ${G1:-?} goroutines after the soak" >&2
  exit 1
fi

HEDGES=$(metric hedges "$ROUTER")
echo "chaos: ok — $OK/$N served under 7% faults + 3% resets + 5% latency spikes," \
  "$ATTEMPTS attempts (limit $LIMIT), ${HEDGES:-0} hedge(s), deadlines gated," \
  "$M/$M streams recovered ($RETRIED retry(ies) over truncate/stall), goroutines flat"
