#!/usr/bin/env sh
# scripts/fleet.sh — fleet smoke test: boot 3 vabufd instances and one
# vabufr router in front of them, then prove the consistent-hash path
# end to end: a repeated insert through the router must land on the same
# backend twice and answer the second call from that backend's warm
# result cache (byte-identical response, result-cache hit counted).
# Used as a CI step; exits non-zero on any failure.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=""
cleanup() {
  # shellcheck disable=SC2086
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/vabufd" ./cmd/vabufd
go build -o "$TMP/vabufr" ./cmd/vabufr

# Boot the backends on ephemeral ports; each gets its own instance id,
# snapshot path (the lock forbids sharing one), and the shared epoch.
BACKENDS=""
for i in 1 2 3; do
  "$TMP/vabufd" -addr 127.0.0.1:0 -instance "b$i" -epoch fleet-smoke \
    -snapshot "$TMP/b$i.snap" -workers 2 >"$TMP/d$i.log" 2>&1 &
  PIDS="$PIDS $!"
done
for i in 1 2 3; do
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*vabufd listening on \([^ ]*\).*/\1/p' "$TMP/d$i.log" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "fleet: vabufd b$i never logged its address" >&2
    cat "$TMP/d$i.log" >&2
    exit 1
  fi
  eval "ADDR$i=$ADDR"
  BACKENDS="$BACKENDS,http://$ADDR"
done
BACKENDS=${BACKENDS#,}

# Boot the router with fast probes so readiness converges quickly.
"$TMP/vabufr" -addr 127.0.0.1:0 -backends "$BACKENDS" \
  -probe-every 200ms -fail-after 1 -recover-after 1 >"$TMP/r.log" 2>&1 &
PIDS="$PIDS $!"
ROUTER=""
for _ in $(seq 1 100); do
  ROUTER=$(sed -n 's/.*vabufr listening on \([^ ]*\).*/\1/p' "$TMP/r.log" | head -1)
  [ -n "$ROUTER" ] && break
  sleep 0.1
done
if [ -z "$ROUTER" ]; then
  echo "fleet: vabufr never logged its address" >&2
  cat "$TMP/r.log" >&2
  exit 1
fi
for _ in $(seq 1 100); do
  curl -fsS "http://$ROUTER/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ROUTER/readyz" >/dev/null

REQ='{"bench":"p1","algo":"nom"}'
curl -fsS -D "$TMP/h1" -o "$TMP/r1.json" -H 'Content-Type: application/json' \
  -d "$REQ" "http://$ROUTER/v1/insert"
curl -fsS -D "$TMP/h2" -o "$TMP/r2.json" -H 'Content-Type: application/json' \
  -d "$REQ" "http://$ROUTER/v1/insert"

inst() { tr -d '\r' <"$1" | sed -n 's/^[Vv]abuf-[Ii]nstance: *//p' | head -1; }
I1=$(inst "$TMP/h1")
I2=$(inst "$TMP/h2")
if [ -z "$I1" ] || [ "$I1" != "$I2" ]; then
  echo "fleet: repeat routed to '$I2', first to '$I1' — routing is not sticky" >&2
  exit 1
fi
if ! cmp -s "$TMP/r1.json" "$TMP/r2.json"; then
  echo "fleet: repeat answered different bytes — not a warm cache hit" >&2
  exit 1
fi

# The owner's own /metrics must count the warm hit. Map the instance id
# (b1/b2/b3) back to its address and read caches.result.hits from the
# indented JSON.
case "$I1" in
  b1) OWNER=$ADDR1 ;;
  b2) OWNER=$ADDR2 ;;
  b3) OWNER=$ADDR3 ;;
  *) echo "fleet: unknown serving instance '$I1'" >&2; exit 1 ;;
esac
HITS=$(curl -fsS "http://$OWNER/metrics" \
  | sed -n '/"result": {/,/}/p' | sed -n 's/.*"hits": \([0-9][0-9]*\).*/\1/p' | head -1)
if [ -z "$HITS" ] || [ "$HITS" -lt 1 ]; then
  echo "fleet: owner $I1 result-cache hits = '${HITS:-?}', want >= 1" >&2
  exit 1
fi

# Router metrics sanity: it must report itself ready.
curl -fsS "http://$ROUTER/metrics" | grep -q '"state": "ready"' || {
  echo "fleet: router /metrics does not report state ready" >&2
  exit 1
}

echo "fleet: ok — repeat served by $I1 from its warm cache ($HITS hit(s)) via the router"
