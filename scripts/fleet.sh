#!/usr/bin/env sh
# scripts/fleet.sh — fleet smoke test: boot 3 vabufd instances and one
# vabufr router in front of them, then prove the consistent-hash path
# end to end: a repeated insert through the router must land on the same
# backend twice and answer the second call from that backend's warm
# result cache (byte-identical response, result-cache hit counted).
#
# A second router then proves dynamic membership: booted from a
# -backends-file naming 2 of the 3 backends, warmed with a spread of
# keys, grown to 3 via SIGHUP — the ring_rebuilds counter must bump,
# every warmed key must still answer 200, and at least one moved key
# must be served from its previous owner's cache via the synchronous
# peer lookup (lookup-hit counter > 0) instead of being recomputed.
# Used as a CI step; exits non-zero on any failure.
set -eu
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=""
cleanup() {
  # shellcheck disable=SC2086
  [ -n "$PIDS" ] && kill $PIDS 2>/dev/null || true
  # Give the processes a beat to exit so rm does not race their final
  # snapshot/log writes; a leftover tmp dir must not fail the run.
  sleep 1
  rm -rf "$TMP" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

go build -o "$TMP/vabufd" ./cmd/vabufd
go build -o "$TMP/vabufr" ./cmd/vabufr

# metric NAME URL — read one integer gauge/counter from a /metrics body.
metric() {
  curl -fsS "http://$2/metrics" \
    | sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" | head -1
}

# Boot the backends on ephemeral ports; each gets its own instance id,
# snapshot path (the lock forbids sharing one), and the shared epoch.
BACKENDS=""
for i in 1 2 3; do
  "$TMP/vabufd" -addr 127.0.0.1:0 -instance "b$i" -epoch fleet-smoke \
    -snapshot "$TMP/b$i.snap" -workers 2 >"$TMP/d$i.log" 2>&1 &
  PIDS="$PIDS $!"
done
for i in 1 2 3; do
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*vabufd listening on \([^ ]*\).*/\1/p' "$TMP/d$i.log" | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "fleet: vabufd b$i never logged its address" >&2
    cat "$TMP/d$i.log" >&2
    exit 1
  fi
  eval "ADDR$i=$ADDR"
  BACKENDS="$BACKENDS,http://$ADDR"
done
BACKENDS=${BACKENDS#,}

# Boot the router with fast probes so readiness converges quickly.
"$TMP/vabufr" -addr 127.0.0.1:0 -backends "$BACKENDS" \
  -probe-every 200ms -fail-after 1 -recover-after 1 >"$TMP/r.log" 2>&1 &
PIDS="$PIDS $!"
ROUTER=""
for _ in $(seq 1 100); do
  ROUTER=$(sed -n 's/.*vabufr listening on \([^ ]*\).*/\1/p' "$TMP/r.log" | head -1)
  [ -n "$ROUTER" ] && break
  sleep 0.1
done
if [ -z "$ROUTER" ]; then
  echo "fleet: vabufr never logged its address" >&2
  cat "$TMP/r.log" >&2
  exit 1
fi
for _ in $(seq 1 100); do
  curl -fsS "http://$ROUTER/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ROUTER/readyz" >/dev/null

REQ='{"bench":"p1","algo":"nom"}'
curl -fsS -D "$TMP/h1" -o "$TMP/r1.json" -H 'Content-Type: application/json' \
  -d "$REQ" "http://$ROUTER/v1/insert"
curl -fsS -D "$TMP/h2" -o "$TMP/r2.json" -H 'Content-Type: application/json' \
  -d "$REQ" "http://$ROUTER/v1/insert"

inst() { tr -d '\r' <"$1" | sed -n 's/^[Vv]abuf-[Ii]nstance: *//p' | head -1; }
I1=$(inst "$TMP/h1")
I2=$(inst "$TMP/h2")
if [ -z "$I1" ] || [ "$I1" != "$I2" ]; then
  echo "fleet: repeat routed to '$I2', first to '$I1' — routing is not sticky" >&2
  exit 1
fi
if ! cmp -s "$TMP/r1.json" "$TMP/r2.json"; then
  echo "fleet: repeat answered different bytes — not a warm cache hit" >&2
  exit 1
fi

# The owner's own /metrics must count the warm hit. Map the instance id
# (b1/b2/b3) back to its address and read caches.result.hits from the
# indented JSON.
case "$I1" in
  b1) OWNER=$ADDR1 ;;
  b2) OWNER=$ADDR2 ;;
  b3) OWNER=$ADDR3 ;;
  *) echo "fleet: unknown serving instance '$I1'" >&2; exit 1 ;;
esac
HITS=$(curl -fsS "http://$OWNER/metrics" \
  | sed -n '/"result": {/,/}/p' | sed -n 's/.*"hits": \([0-9][0-9]*\).*/\1/p' | head -1)
if [ -z "$HITS" ] || [ "$HITS" -lt 1 ]; then
  echo "fleet: owner $I1 result-cache hits = '${HITS:-?}', want >= 1" >&2
  exit 1
fi

# Router metrics sanity: it must report itself ready.
curl -fsS "http://$ROUTER/metrics" | grep -q '"state": "ready"' || {
  echo "fleet: router /metrics does not report state ready" >&2
  exit 1
}

echo "fleet: ok — repeat served by $I1 from its warm cache ($HITS hit(s)) via the router"

# --- Resize smoke: dynamic membership + synchronous peer lookup ---

# A second router starts from a backends *file* naming only b1 and b2.
echo "http://$ADDR1" > "$TMP/backends.txt"
echo "http://$ADDR2" >> "$TMP/backends.txt"
"$TMP/vabufr" -addr 127.0.0.1:0 -backends-file "$TMP/backends.txt" \
  -probe-every 200ms -fail-after 1 -recover-after 1 >"$TMP/r2.log" 2>&1 &
RPID2=$!
PIDS="$PIDS $RPID2"
ROUTER2=""
for _ in $(seq 1 100); do
  ROUTER2=$(sed -n 's/.*vabufr listening on \([^ ]*\).*/\1/p' "$TMP/r2.log" | head -1)
  [ -n "$ROUTER2" ] && break
  sleep 0.1
done
if [ -z "$ROUTER2" ]; then
  echo "fleet: resize vabufr never logged its address" >&2
  cat "$TMP/r2.log" >&2
  exit 1
fi
for _ in $(seq 1 100); do
  curl -fsS "http://$ROUTER2/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$ROUTER2/readyz" >/dev/null

# Warm a spread of distinct keys (pbar is fingerprinted, so each value
# is its own partition key; core requires pbar in [0.5, 1)) across the
# 2-backend ring.
PBARS="0.51 0.52 0.53 0.54 0.55 0.56 0.57 0.58 0.59 0.60 0.61 0.62 0.63 0.64 0.65 0.66 0.67 0.68 0.69 0.70"
for P in $PBARS; do
  curl -fsS -o /dev/null -H 'Content-Type: application/json' \
    -d "{\"bench\":\"p1\",\"algo\":\"nom\",\"pbar\":$P}" "http://$ROUTER2/v1/insert"
done

# Grow the fleet: append b3 to the file and SIGHUP the router.
echo "http://$ADDR3" >> "$TMP/backends.txt"
kill -HUP "$RPID2"
REBUILDS=""
for _ in $(seq 1 100); do
  REBUILDS=$(curl -fsS "http://$ROUTER2/metrics" \
    | sed -n 's/.*"rebuilds": \([0-9][0-9]*\).*/\1/p' | head -1)
  [ "${REBUILDS:-0}" -ge 2 ] && break
  sleep 0.1
done
if [ "${REBUILDS:-0}" -lt 2 ]; then
  echo "fleet: ring_rebuilds = '${REBUILDS:-?}' after SIGHUP, want >= 2" >&2
  cat "$TMP/r2.log" >&2
  exit 1
fi

# Wait for all 3 members to probe healthy so moved keys route to b3.
for _ in $(seq 1 100); do
  UP=$(curl -fsS "http://$ROUTER2/metrics" | grep -c '"healthy": true' || true)
  [ "${UP:-0}" -ge 3 ] && break
  sleep 0.1
done

# Every warmed key must still answer 200 across the resize; moved keys
# are rescued from their previous owner's cache via the peer lookup.
for P in $PBARS; do
  curl -fsS -o /dev/null -H 'Content-Type: application/json' \
    -d "{\"bench\":\"p1\",\"algo\":\"nom\",\"pbar\":$P}" "http://$ROUTER2/v1/insert" || {
    echo "fleet: key pbar=$P failed after the resize" >&2
    exit 1
  }
done
LHITS=$(curl -fsS "http://$ROUTER2/metrics" \
  | sed -n '/"lookups": {/,/}/p' | sed -n 's/.*"hits": \([0-9][0-9]*\).*/\1/p' | head -1)
if [ -z "$LHITS" ] || [ "$LHITS" -lt 1 ]; then
  echo "fleet: lookup hits = '${LHITS:-?}' after the resize, want >= 1" >&2
  curl -fsS "http://$ROUTER2/metrics" >&2 || true
  exit 1
fi

echo "fleet: ok — resize 2->3 rebuilt the ring ($REBUILDS rebuilds), all keys served, $LHITS moved key(s) rescued via peer lookup"

# --- Goroutine-growth gate: after the whole smoke (two routers, a
# resize, dozens of requests) each backend's goroutine gauge must sit in
# a flat envelope. A leak proportional to request count would blow past
# the slack; idle keep-alive conns and probe handlers fit inside it.
sleep 2
for i in 1 2 3; do
  G=$(metric goroutines "$(eval echo "\$ADDR$i")")
  if [ -z "$G" ] || [ "$G" -gt 40 ]; then
    echo "fleet: backend b$i reports ${G:-?} goroutines after the smoke, want <= 40" >&2
    exit 1
  fi
done
echo "fleet: ok — backend goroutine envelope flat after the smoke"
