#!/usr/bin/env sh
# scripts/bench_guard.sh — coarse perf-regression gate for CI: re-run a
# small set of guard benchmarks and fail if any ns/op exceeds 2x the
# committed BENCH_core.json snapshot. The 2x margin absorbs runner noise
# and hardware skew; genuine regressions (a lost arena, an accidental
# re-sort, a dropped prune, a dead subtree cache) blow well past it.
set -eu
cd "$(dirname "$0")/.."

# pkg:benchmark pairs under guard:
#   * the end-to-end serial WID r3 insertion (the headline number),
#   * the 1024-candidate 2P frontier scan (the SoA prune hot loop),
#   * the warm subtree-cache re-insert (a silently dead cache would
#     regress this one ~8x back to the cold time),
#   * the 32-cell-library r3 insertion (a silently disabled convex-hull
#     buffering kernel would regress this one ~5.7x to the exact time).
GUARDS="
.:BenchmarkInsertWIDr3Serial
./internal/core/:BenchmarkPrune2P1024
./internal/core/:BenchmarkInsertSubtreeWarmWIDr3
./internal/core/:BenchmarkInsertLib32NOMr3Serial
"

FAIL=0
for G in $GUARDS; do
  PKG=${G%%:*}
  BENCH=${G#*:}

  # The snapshot holds one object per line; take the last match so the
  # current results section wins over the frozen baseline block.
  BASE=$(sed -n "s/.*\"name\": \"$BENCH\".*\"ns_per_op\": \([0-9][0-9]*\).*/\1/p" BENCH_core.json | tail -1)
  if [ -z "$BASE" ]; then
    echo "bench_guard: $BENCH missing from BENCH_core.json" >&2
    exit 2
  fi

  NOW=$(go test "$PKG" -run '^$' -bench "${BENCH#Benchmark}\$" -benchtime 2x \
    | awk -v b="$BENCH" 'index($1, b) == 1 { for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1) }')
  NOW=${NOW%%.*}
  if [ -z "$NOW" ]; then
    echo "bench_guard: $BENCH produced no ns/op" >&2
    exit 2
  fi

  LIMIT=$((BASE * 2))
  echo "bench_guard: $BENCH now $NOW ns/op, snapshot $BASE ns/op, limit $LIMIT ns/op"
  if [ "$NOW" -gt "$LIMIT" ]; then
    echo "bench_guard: perf regression: $BENCH $NOW ns/op > 2x the committed snapshot" >&2
    FAIL=1
  fi
done
exit $FAIL
