#!/usr/bin/env sh
# scripts/bench_guard.sh — coarse perf-regression gate for CI: re-run the
# serial r3 WID insertion benchmark and fail if its ns/op exceeds 2x the
# committed BENCH_core.json snapshot. The 2x margin absorbs runner noise
# and hardware skew; genuine regressions (a lost arena, an accidental
# re-sort, a dropped prune) blow well past it.
set -eu
cd "$(dirname "$0")/.."

BENCH=BenchmarkInsertWIDr3Serial

# The snapshot holds one object per line; take the last match so the
# current results section wins over the frozen baseline block.
BASE=$(sed -n "s/.*\"name\": \"$BENCH\".*\"ns_per_op\": \([0-9][0-9]*\).*/\1/p" BENCH_core.json | tail -1)
if [ -z "$BASE" ]; then
  echo "bench_guard: $BENCH missing from BENCH_core.json" >&2
  exit 2
fi

NOW=$(go test . -run '^$' -bench "${BENCH#Benchmark}\$" -benchtime 2x \
  | awk -v b="$BENCH" 'index($1, b) == 1 { for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1) }')
NOW=${NOW%%.*}
if [ -z "$NOW" ]; then
  echo "bench_guard: $BENCH produced no ns/op" >&2
  exit 2
fi

LIMIT=$((BASE * 2))
echo "bench_guard: $BENCH now $NOW ns/op, snapshot $BASE ns/op, limit $LIMIT ns/op"
if [ "$NOW" -gt "$LIMIT" ]; then
  echo "bench_guard: perf regression: $NOW ns/op > 2x the committed snapshot" >&2
  exit 1
fi
