#!/usr/bin/env sh
# scripts/bench.sh — run the DP-engine micro-benchmarks and snapshot the
# results into BENCH_core.json so the perf trajectory is tracked in-repo.
#
# Usage:
#   scripts/bench.sh [-count N] [-benchtime T] [-out FILE]
#
# Defaults: -count 1, -benchtime 2x, -out BENCH_core.json (repo root).
# The snapshot records ns/op, B/op and allocs/op for:
#   * canonical-form kernels   (internal/variation: AXPY[In], Min[In])
#   * pruning rules            (internal/core: Prune2P/4P at 256/1024)
#   * end-to-end insertion     (internal/core + root: NOM/WID presets,
#                               Serial vs Par4 pairs for the speedup ratio)
set -eu

COUNT=1
BENCHTIME=2x
OUT=BENCH_core.json
while [ $# -gt 0 ]; do
  case "$1" in
    -count) COUNT=$2; shift 2 ;;
    -benchtime) BENCHTIME=$2; shift 2 ;;
    -out) OUT=$2; shift 2 ;;
    *) echo "usage: $0 [-count N] [-benchtime T] [-out FILE]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

run() { # run <pkg> <bench-regex>
  echo "== go test $1 -bench $2 (benchtime=$BENCHTIME count=$COUNT)" >&2
  go test "$1" -run '^$' -bench "$2" -benchtime "$BENCHTIME" -count "$COUNT" \
    | tee /dev/stderr | grep '^Benchmark' >>"$RAW" || true
}

run ./internal/variation/ 'AXPY|Min'
run ./internal/core/ 'Prune|Insert'
run . 'InsertWIDr[35](Serial|Par4)$'

# Fold the `go test -bench` lines into a JSON array. Each line looks like:
#   BenchmarkName-8   12   3456 ns/op   789 B/op   10 allocs/op
{
  printf '{\n'
  printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "cpus_online": %s,\n' "$(getconf _NPROCESSORS_ONLN)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  printf '  "count": %s,\n' "$COUNT"
  if [ -f scripts/bench_baseline.json ]; then
    # Frozen pre-arena/pre-parallel measurements, kept alongside every
    # snapshot so speedup and allocs/op deltas are readable in one file.
    printf '  "baseline":\n'
    sed 's/^/  /' scripts/bench_baseline.json | sed '$s/$/,/'
  fi
  printf '  "results": [\n'
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      ns = ""; bytes = ""; allocs = ""
      for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i-1)
        if ($(i) == "B/op") bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
      }
      line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
      if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
      if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
      if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
      line = line "}"
      lines[n++] = line
    }
    END { for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n-1 ? "," : "") }
  ' "$RAW"
  printf '  ]\n'
  printf '}\n'
} >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") results)" >&2
