#!/usr/bin/env sh
# scripts/bench.sh — run the DP-engine micro-benchmarks and snapshot the
# results into BENCH_core.json so the perf trajectory is tracked in-repo.
#
# Usage:
#   scripts/bench.sh [-count N] [-benchtime T] [-out FILE]
#
# Defaults: -count 5, -benchtime 2x, -out BENCH_core.json (repo root).
# Each benchmark runs COUNT times and the snapshot records the per-metric
# median, so one noisy run cannot skew the committed numbers. Tracked:
#   * canonical-form kernels   (internal/variation: AXPY[In], Min[In],
#                               SigmaDiff merge walks)
#   * frontier scans           (internal/core: Prune2P[Mean]/4P at
#                               256/1024 over the SoA candidate frontier;
#                               B/op tracks arena bytes per list size)
#   * end-to-end insertion     (internal/core + root: NOM/WID presets,
#                               Serial vs Par4 vs Auto4 for the speedup
#                               ratio and the auto-serial degrade)
#   * library scaling          (internal/core: InsertLib{8,32} on r3 with
#                               the n-cell ScaledLibrary; the *Exact
#                               variants pin the pre-hull kernel so the
#                               convex-hull buffering win stays measured
#                               inside one snapshot)
#   * subtree-DP caching       (internal/core: InsertSubtreeColdWIDr3 vs
#                               InsertSubtreeWarmWIDr3 — a warm re-insert
#                               with one mutated branch reuses every
#                               untouched subtree frontier)
#   * serve-path memoization   (internal/server: ServeInsertCold vs
#                               ServeInsertWarm, the result-cache win)
#   * adaptive Monte Carlo     (root: MCR3Adaptive vs MCR3Fixed; the
#                               "samples" metric is the early-stop signal)
set -eu

COUNT=5
BENCHTIME=2x
OUT=BENCH_core.json
while [ $# -gt 0 ]; do
  case "$1" in
    -count) COUNT=$2; shift 2 ;;
    -benchtime) BENCHTIME=$2; shift 2 ;;
    -out) OUT=$2; shift 2 ;;
    *) echo "usage: $0 [-count N] [-benchtime T] [-out FILE]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

run() { # run <pkg> <bench-regex>
  echo "== go test $1 -bench $2 (benchtime=$BENCHTIME count=$COUNT)" >&2
  go test "$1" -run '^$' -bench "$2" -benchtime "$BENCHTIME" -count "$COUNT" \
    | tee /dev/stderr | grep '^Benchmark' >>"$RAW" || true
}

run ./internal/variation/ 'AXPY|Min|SigmaDiff'
run ./internal/core/ 'Prune|Insert'
run ./internal/server/ 'ServeInsert'
run . 'InsertWIDr[35](Serial|Par4)$|MCR3'

# Fold the `go test -bench` lines into a JSON array, one object per
# benchmark with the median of each metric across the COUNT repetitions.
# Each raw line looks like:
#   BenchmarkName-8   12   3456 ns/op   789 B/op   10 allocs/op
# (adaptive-MC benches additionally report a "samples" metric).
{
  printf '{\n'
  printf '  "generated": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "cpus_online": %s,\n' "$(getconf _NPROCESSORS_ONLN)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  printf '  "count": %s,\n' "$COUNT"
  printf '  "note": "InsertLib32NOMr3 Serial vs SerialExact is the convex-hull buffering kernel speedup on a 32-cell library (~5.7x at the 2026-08 snapshot)",\n'
  if [ -f scripts/bench_baseline.json ]; then
    # Frozen pre-arena/pre-parallel measurements, kept alongside every
    # snapshot so speedup and allocs/op deltas are readable in one file.
    printf '  "baseline":\n'
    sed 's/^/  /' scripts/bench_baseline.json | sed '$s/$/,/'
  fi
  printf '  "results": [\n'
  awk '
    # Full-precision number-to-string conversion: without this, mawk
    # prints ns/op medians past 2^31 in scientific notation.
    BEGIN { CONVFMT = "%.17g"; OFMT = "%.17g" }
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      if (!(name in cnt)) { names[nn++] = name; iter[name] = $2 }
      k = cnt[name]++
      for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op") ns[name, k] = $(i-1)
        if ($(i) == "B/op") bytes[name, k] = $(i-1)
        if ($(i) == "allocs/op") allocs[name, k] = $(i-1)
        if ($(i) == "samples") samples[name, k] = $(i-1)
      }
    }
    # median of the values recorded for name (insertion sort; COUNT is tiny)
    function median(arr, name, runs,   m, i, j, t, v) {
      m = 0
      for (i = 0; i < runs; i++) if ((name, i) in arr) v[m++] = arr[name, i] + 0
      if (m == 0) return ""
      for (i = 1; i < m; i++) {
        t = v[i]
        for (j = i - 1; j >= 0 && v[j] > t; j--) v[j + 1] = v[j]
        v[j + 1] = t
      }
      if (m % 2) return v[(m - 1) / 2]
      return (v[m / 2 - 1] + v[m / 2]) / 2
    }
    END {
      for (x = 0; x < nn; x++) {
        name = names[x]
        line = sprintf("    {\"name\": \"%s\", \"runs\": %d, \"iterations\": %s", \
                       name, cnt[name], iter[name])
        m = median(ns, name, cnt[name])
        if (m != "") line = line sprintf(", \"ns_per_op\": %s", m)
        m = median(bytes, name, cnt[name])
        if (m != "") line = line sprintf(", \"bytes_per_op\": %s", m)
        m = median(allocs, name, cnt[name])
        if (m != "") line = line sprintf(", \"allocs_per_op\": %s", m)
        m = median(samples, name, cnt[name])
        if (m != "") line = line sprintf(", \"samples\": %s", m)
        line = line "}"
        printf "%s%s\n", line, (x < nn - 1 ? "," : "")
      }
    }
  ' "$RAW"
  printf '  ]\n'
  printf '}\n'
} >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") results)" >&2
