// Command benchgen emits benchmark routing trees in the rctree text
// format: the built-in Table 1 presets, arbitrary random trees, or H-tree
// clock networks.
//
// Usage:
//
//	benchgen -preset r3 > r3.tree
//	benchgen -sinks 500 -seed 7 -die 8000 > net.tree
//	benchgen -htree 6 -die 10000 > clk.tree
//	benchgen -lib 32 > lib32.json
package main

import (
	"flag"
	"fmt"
	"os"

	"vabuf"
	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		preset  = flag.String("preset", "", "Table 1 preset name (p1, p2, r1..r5)")
		sinks   = flag.Int("sinks", 0, "random tree sink count")
		seed    = flag.Int64("seed", 1, "random tree seed")
		die     = flag.Float64("die", 0, "die side in µm (0 = auto)")
		htree   = flag.Int("htree", 0, "H-tree levels (4^levels sinks)")
		segment = flag.Float64("segment", 0, "segmentize wires longer than this (µm, 0 = off)")
		libN    = flag.Int("lib", 0, "emit an n-cell scaled repeater+inverter library as JSON instead of a tree")
		list    = flag.Bool("list", false, "list the built-in presets and exit")
	)
	flag.Parse()

	if *libN > 0 {
		lib, err := benchgen.ScaledLibrary(*libN)
		if err != nil {
			return err
		}
		return device.WriteLibrary(os.Stdout, lib)
	}

	if *list {
		for _, s := range benchgen.Presets() {
			fmt.Printf("%-4s %6d sinks (seed %d)\n", s.Name, s.Sinks, s.Seed)
		}
		return nil
	}

	var (
		tree *vabuf.Tree
		err  error
	)
	switch {
	case *preset != "":
		tree, err = benchgen.Build(*preset)
	case *htree > 0:
		side := *die
		if side == 0 {
			side = 10000
		}
		tree, err = benchgen.HTree(*htree, side, 10, rctree.WireParams{}, 0.3)
	case *sinks > 0:
		tree, err = benchgen.Random(benchgen.Spec{
			Name:    fmt.Sprintf("rand%d", *sinks),
			Sinks:   *sinks,
			Seed:    *seed,
			DieSide: *die,
		})
	default:
		return fmt.Errorf("one of -preset, -sinks or -htree is required (or -list)")
	}
	if err != nil {
		return err
	}
	if *segment > 0 {
		tree, err = benchgen.Segmentize(tree, *segment)
		if err != nil {
			return err
		}
	}
	return vabuf.WriteTree(os.Stdout, tree)
}
