package main

import (
	"testing"
	"time"
)

// TestRetryPolicyDelay locks the Retry-After handling: an honored hint
// is clamped to at least the base backoff (a "Retry-After: 0" must not
// produce a zero-sleep hot retry loop), unparsable values — including
// the HTTP-date form — fall back to the jittered backoff, and the
// computed backoff grows exponentially under the cap.
func TestRetryPolicyDelay(t *testing.T) {
	p := retryPolicy{retries: 8, base: 100 * time.Millisecond, max: 2 * time.Second}
	backoffAt := func(attempt int) (lo, hi time.Duration) {
		d := p.base << (attempt - 1)
		if d > p.max || d <= 0 {
			d = p.max
		}
		return time.Duration(float64(d) * 0.75), time.Duration(float64(d) * 1.25)
	}

	cases := []struct {
		name       string
		attempt    int
		retryAfter string
		exact      time.Duration // when > 0, the delay must equal this
		backoff    bool          // otherwise: jittered backoff of attempt
	}{
		{name: "honored seconds", attempt: 1, retryAfter: "3", exact: 3 * time.Second},
		{name: "honored with spaces", attempt: 1, retryAfter: " 2 ", exact: 2 * time.Second},
		{name: "zero clamps to base", attempt: 1, retryAfter: "0", exact: p.base},
		{name: "sub-base clamps to base", attempt: 5, retryAfter: "0", exact: p.base},
		{name: "negative ignored", attempt: 1, retryAfter: "-5", backoff: true},
		{name: "http-date ignored", attempt: 2, retryAfter: "Fri, 31 Dec 1999 23:59:59 GMT", backoff: true},
		{name: "garbage ignored", attempt: 2, retryAfter: "soon", backoff: true},
		{name: "absent backs off", attempt: 1, retryAfter: "", backoff: true},
		{name: "backoff grows", attempt: 3, retryAfter: "", backoff: true},
		{name: "backoff caps at max", attempt: 20, retryAfter: "", backoff: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The jitter is random: sample repeatedly so a lucky draw
			// can't hide an out-of-range delay.
			for i := 0; i < 50; i++ {
				got := p.delay(tc.attempt, tc.retryAfter)
				if got <= 0 {
					t.Fatalf("delay(%d, %q) = %v; a retry sleep must be positive",
						tc.attempt, tc.retryAfter, got)
				}
				if tc.exact > 0 {
					if got != tc.exact {
						t.Fatalf("delay(%d, %q) = %v, want exactly %v",
							tc.attempt, tc.retryAfter, got, tc.exact)
					}
					continue
				}
				lo, hi := backoffAt(tc.attempt)
				if got < lo || got > hi {
					t.Fatalf("delay(%d, %q) = %v outside the jitter band [%v, %v]",
						tc.attempt, tc.retryAfter, got, lo, hi)
				}
			}
		})
	}
}
