// Command bufins runs buffer insertion on a routing tree — either one of
// the built-in Table 1 benchmarks or a tree file in the rctree text
// format — and prints the resulting RAT distribution, buffer count, and
// optionally the full assignment.
//
// Usage:
//
//	bufins -bench r3 -algo wid
//	bufins -tree net.tree -algo nom -print-assignment
//	bufins -bench r1 -json    # machine-readable, the vabufd /v1/insert DTO
//	bufins -batch reqs.json -server http://localhost:8577
//	                          # POST a JSON array of requests as one batch
//	bufins -batch reqs.json -server http://h1:8577,http://h2:8577
//	                          # rotate to the next address on connect error/503
//	bufins -bench r3 -stream -mc 32768 -mc-tol 0.01
//	                          # stream adaptive Monte-Carlo yield analysis
//
// Batch mode reads a JSON array of /v1/insert request objects (or "-"
// for stdin), posts them to the server's /v1/insert:batch endpoint as
// one aggregate call, and prints the aggregate response. The items run
// under the sweep priority class, yielding to interactive requests.
//
// Stream mode posts a yield request to the server's /v1/yield:stream
// endpoint and follows the NDJSON event stream: Monte-Carlo progress
// ticks on stderr as shard-sized chunks commit, and the final result
// prints on stdout (the full /v1/yield DTO with -json). A positive
// -mc-tol selects the adaptive sampler, which stops once the yield
// quantile's CI half-width falls within the tolerance.
//
// Algorithms: nom (deterministic van Ginneken), d2d (random + inter-die
// variation), wid (all variation classes, the paper's algorithm). The
// -rule flag selects 2P (default) or the 4P baseline, and -pbar sets the
// 2P thresholds.
package main

import (
	"bufio"
	"bytes"
	"cmp"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"time"

	"vabuf"
	"vabuf/internal/server"
	"vabuf/internal/variation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bufins:", err)
		os.Exit(1)
	}
}

// profileTo starts a CPU profile and/or arranges a heap profile; the
// returned func finalizes both. Shared by bufins and experiments via copy —
// it is 20 lines of flag glue, not worth a package.
func profileTo(cpuFile, memFile string) (func() error, error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpu = f
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func run() error {
	var (
		bench     = flag.String("bench", "", "built-in benchmark name ("+strings.Join(vabuf.Benchmarks(), ", ")+")")
		treeFile  = flag.String("tree", "", "tree file in rctree text format")
		algo      = flag.String("algo", "wid", "nom, d2d, or wid")
		ruleName  = flag.String("rule", "2p", "pruning rule for variation-aware runs: 2p or 4p")
		hullName  = flag.String("hull", "auto", "convex-hull buffering kernel: auto, on, or off (results identical)")
		pbar      = flag.Float64("pbar", 0.5, "2P thresholds pbar_L = pbar_T")
		budget    = flag.Float64("budget", 0.15, "per-class variation budget")
		hetero    = flag.Bool("hetero", true, "heterogeneous spatial variation")
		quantile  = flag.Float64("quantile", 0.05, "yield quantile for selection and reporting")
		maxCand   = flag.Int("max-candidates", 0, "candidate cap (0 = unlimited)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit (0 = unlimited)")
		printAsgn = flag.Bool("print-assignment", false, "print the buffer assignment")
		inverters = flag.Bool("inverters", false, "add the inverter library (polarity-aware insertion)")
		libFile   = flag.String("library", "", "JSON buffer-library file (default: built-in library)")
		wireSize  = flag.Bool("wire-sizing", false, "enable simultaneous wire sizing")
		critN     = flag.Int("criticality", 0, "print the N most critical sinks")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON (the vabufd /v1/insert DTO)")
		batchFile = flag.String("batch", "", `JSON array of insert requests to POST as one batch ("-" = stdin)`)
		stream    = flag.Bool("stream", false, "stream Monte-Carlo yield analysis from the server's /v1/yield:stream")
		mcN       = flag.Int("mc", 0, "Monte-Carlo sample budget for -stream mode")
		mcTol     = flag.Float64("mc-tol", 0, "adaptive MC: stop once the quantile CI half-width is within this relative tolerance (0 = burn the full -mc budget)")
		seed      = flag.Int64("seed", 0, "Monte-Carlo seed for -stream mode (0 = server default)")
		serverURL = flag.String("server", "http://localhost:8577",
			"comma-separated vabufd (or vabufr) base URLs for -batch and -stream modes; rotates to the next address on connect error or 503")
		retries   = flag.Int("retries", 4, "batch-mode retries on 429/503/transport errors (0 disables)")
		retryBase = flag.Duration("retry-base", 250*time.Millisecond, "initial retry backoff (doubles per attempt, with jitter)")
		retryMax  = flag.Duration("retry-max", 5*time.Second, "backoff cap; Retry-After overrides the computed delay")
		parallel  = flag.Int("parallel", 0, "DP worker goroutines (0 = GOMAXPROCS, 1 = serial; results identical)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	finishProfiles, err := profileTo(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := finishProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "bufins: profile:", err)
		}
	}()

	if *batchFile != "" {
		if *bench != "" || *treeFile != "" {
			return fmt.Errorf("-batch is exclusive with -bench/-tree: the batch file carries the trees")
		}
		if *stream {
			return fmt.Errorf("-batch and -stream are exclusive")
		}
		servers, err := parseServerList(*serverURL)
		if err != nil {
			return err
		}
		pol := retryPolicy{retries: *retries, base: *retryBase, max: *retryMax}
		if *timeout > 0 {
			pol.deadline = time.Now().Add(*timeout)
		}
		return runBatch(*batchFile, servers, pol)
	}

	if *stream {
		switch {
		case *mcN <= 0:
			return fmt.Errorf("-stream needs a Monte-Carlo budget: set -mc > 0")
		case *libFile != "":
			return fmt.Errorf("-library is local-only; -stream runs against the server's built-in library")
		case *critN > 0:
			return fmt.Errorf("-criticality is local-only, not available with -stream")
		}
		req := server.YieldRequest{
			InsertRequest: server.InsertRequest{
				Bench:             *bench,
				Algo:              *algo,
				Rule:              *ruleName,
				Hull:              *hullName,
				Pbar:              *pbar,
				Budget:            *budget,
				Heterogeneous:     hetero,
				Quantile:          *quantile,
				MaxCandidates:     *maxCand,
				TimeoutMS:         timeout.Milliseconds(),
				Parallelism:       *parallel,
				WireSizing:        *wireSize,
				Inverters:         *inverters,
				IncludeAssignment: *printAsgn,
			},
			MonteCarlo: *mcN,
			Seed:       *seed,
			MCTol:      *mcTol,
		}
		switch {
		case *bench != "" && *treeFile != "":
			return fmt.Errorf("give either -bench or -tree, not both")
		case *treeFile != "":
			raw, err := os.ReadFile(*treeFile)
			if err != nil {
				return err
			}
			req.Tree = string(raw)
		case *bench == "":
			return fmt.Errorf("one of -bench or -tree is required")
		}
		servers, err := parseServerList(*serverURL)
		if err != nil {
			return err
		}
		pol := retryPolicy{retries: *retries, base: *retryBase, max: *retryMax}
		if *timeout > 0 {
			pol.deadline = time.Now().Add(*timeout)
		}
		return runStream(req, servers, pol, *jsonOut)
	}

	if err := server.CheckUnitInterval("-pbar", *pbar); err != nil {
		return err
	}
	if err := server.CheckUnitInterval("-quantile", *quantile); err != nil {
		return err
	}
	tree, err := loadTree(*bench, *treeFile)
	if err != nil {
		return err
	}
	lib := vabuf.DefaultLibrary()
	if *libFile != "" {
		f, err := os.Open(*libFile)
		if err != nil {
			return err
		}
		lib, err = vabuf.ReadLibrary(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *inverters {
		lib = append(lib, vabuf.InverterLibrary()...)
	}
	opts := vabuf.Options{
		Library:        lib,
		PbarL:          *pbar,
		PbarT:          *pbar,
		SelectQuantile: *quantile,
		MaxCandidates:  *maxCand,
		Timeout:        *timeout,
		Parallelism:    *parallel,
	}
	if *wireSize {
		opts.WireLibrary = vabuf.DefaultWireLibrary()
	}
	switch *ruleName {
	case "2p":
		opts.Rule = vabuf.Rule2P
	case "4p":
		opts.Rule = vabuf.Rule4P
	default:
		return fmt.Errorf("unknown rule %q", *ruleName)
	}
	opts.HullBuffering, err = vabuf.ParseHullMode(*hullName)
	if err != nil {
		return err
	}
	var model *vabuf.VariationModel
	switch *algo {
	case "nom":
	case "d2d", "wid":
		cfg := vabuf.DefaultModelConfig(tree)
		cfg.RandomFrac = *budget
		cfg.InterDieFrac = *budget
		cfg.SpatialFrac = *budget
		cfg.Heterogeneous = *hetero
		if *algo == "d2d" {
			cfg.SpatialFrac = 0
			cfg.Heterogeneous = false
		}
		model, err = variation.NewModel(cfg)
		if err != nil {
			return err
		}
		opts.Model = model
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	t0 := time.Now()
	res, err := vabuf.Insert(tree, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)

	if *jsonOut {
		out := server.NewInsertResult(tree, lib, *algo, opts, res, elapsed, *printAsgn)
		out.Bench = *bench
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("tree: %d sinks, %d buffer positions, %.0f µm wire\n",
		tree.NumSinks(), tree.NumBufferPositions(), tree.TotalWireLength())
	fmt.Printf("algo: %s (rule %v, pbar %.2f)\n", *algo, opts.Rule, *pbar)
	fmt.Printf("RAT:  mean %.2f ps, sigma %.2f ps, %g%%-yield RAT %.2f ps\n",
		res.Mean, res.Sigma, 100*(1-*quantile), res.Objective)
	fmt.Printf("buffers: %d, root candidates: %d\n", res.NumBuffers, res.RootCandidates)
	fmt.Printf("runtime: %.3fs (%d candidates generated, %d pruned, peak list %d)\n",
		elapsed.Seconds(), res.Stats.Generated, res.Stats.Pruned, res.Stats.PeakList)
	if len(res.WireAssignment) > 0 {
		counts := make(map[int]int)
		for _, wi := range res.WireAssignment {
			counts[wi]++
		}
		fmt.Print("wire sizing:")
		for wi, wc := range opts.WireLibrary {
			fmt.Printf(" %s=%d", wc.Name, counts[wi])
		}
		fmt.Println()
	}
	if *printAsgn {
		ids := make([]vabuf.NodeID, 0, len(res.Assignment))
		for id := range res.Assignment {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			n := tree.Node(id)
			fmt.Printf("  node %-6d %-8s at %s -> %s\n", id, n.Kind, n.Loc, lib[res.Assignment[id]].Name)
		}
	}
	if *critN > 0 {
		crit, err := vabuf.SinkCriticality(tree, lib, res.Assignment, model)
		if err != nil {
			return err
		}
		type entry struct {
			id vabuf.NodeID
			p  float64
		}
		var es []entry
		for id, p := range crit {
			es = append(es, entry{id, p})
		}
		slices.SortFunc(es, func(a, b entry) int { return cmp.Compare(b.p, a.p) })
		fmt.Println("most critical sinks:")
		for i := 0; i < *critN && i < len(es); i++ {
			n := tree.Node(es[i].id)
			fmt.Printf("  sink %-6d at %s  criticality %.1f%%\n", es[i].id, n.Loc, 100*es[i].p)
		}
	}
	return nil
}

// serverList is the set of candidate base URLs behind -server. The
// client talks to one address at a time and rotates to the next on a
// connect error or 503 — 429 means the *current* server's queue is full
// and its Retry-After is specific to it, so 429 retries stay put.
type serverList struct {
	addrs []string
	cur   int
}

// parseServerList splits a comma-separated -server value, trimming
// whitespace and trailing slashes.
func parseServerList(s string) (*serverList, error) {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, strings.TrimRight(a, "/"))
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-server needs at least one base URL")
	}
	return &serverList{addrs: addrs}, nil
}

// url joins the current address with an endpoint path.
func (s *serverList) url(path string) string { return s.addrs[s.cur] + path }

// current returns the current base URL (for log messages).
func (s *serverList) current() string { return s.addrs[s.cur] }

// rotate advances to the next address, reporting whether it moved
// (a single-address list has nowhere to rotate to).
func (s *serverList) rotate() bool {
	if len(s.addrs) < 2 {
		return false
	}
	s.cur = (s.cur + 1) % len(s.addrs)
	return true
}

// retryPolicy is the batch-mode retry schedule: capped exponential
// backoff with jitter, honoring the server's Retry-After hint. With a
// deadline set (-timeout), the whole retry loop shares that one wall
// budget: each attempt advertises the remaining budget to the server
// via the Vabuf-Deadline-Ms header (so a doomed request is refused
// instead of queued), and the loop stops retrying the moment the next
// backoff would overrun it.
type retryPolicy struct {
	retries  int
	base     time.Duration
	max      time.Duration
	deadline time.Time // zero = no overall budget
}

// remaining returns the wall budget left, and whether one exists.
func (p retryPolicy) remaining() (time.Duration, bool) {
	if p.deadline.IsZero() {
		return 0, false
	}
	return time.Until(p.deadline), true
}

// delay computes the sleep before retry attempt (1-based). A Retry-After
// header (integer seconds) takes precedence over the computed backoff but
// is clamped to at least the base backoff: servers routinely send
// "Retry-After: 0" for "retry whenever", and honoring it literally turns
// the retry loop into a hot spin against an already-overloaded server.
// The HTTP-date form (and anything else unparsable) is treated the same
// as an absent header. Jitter of ±25% on the computed backoff keeps a
// fleet of clients from retrying in lockstep.
func (p retryPolicy) delay(attempt int, retryAfter string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		if d := time.Duration(secs) * time.Second; d > p.base {
			return d
		}
		return p.base
	}
	d := p.base << (attempt - 1)
	if d > p.max || d <= 0 {
		d = p.max
	}
	jitter := 0.75 + 0.5*rand.Float64()
	return time.Duration(float64(d) * jitter)
}

// retryableStatus reports whether an aggregate HTTP status is worth
// retrying: 429 (queue full) and 503 (draining/shedding) are explicit
// back-off-and-retry signals from vabufd.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// postWithRetry posts payload to path on the server list, retrying
// transport errors and retryable statuses per the policy. Connect
// errors and 503 rotate to the next -server address before retrying
// (the failed box may be down or draining while a sibling is fine);
// 429 stays on the same address and honors its Retry-After. It returns
// the final response (which may still carry a retryable status once
// attempts are exhausted).
func postWithRetry(servers *serverList, path string, payload []byte, pol retryPolicy) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, servers.url(path), bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if rem, ok := pol.remaining(); ok {
			if rem <= 0 {
				return nil, fmt.Errorf("overall -timeout budget spent after %d attempts", attempt)
			}
			// Advertise the remaining budget so every hop downstream —
			// router, queue, DP — can refuse work it cannot finish in time.
			req.Header.Set(server.DeadlineHeader, server.FormatDeadline(rem))
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		retryAfter := ""
		rotated := false
		if err != nil {
			lastErr = err
			rotated = servers.rotate()
		} else {
			retryAfter = resp.Header.Get("Retry-After")
			if attempt >= pol.retries {
				return resp, nil
			}
			// Discard the overload body; the retried call answers afresh.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				if rotated = servers.rotate(); rotated {
					// The sibling is a different box; its load has
					// nothing to do with the Retry-After we just got.
					retryAfter = ""
				}
			}
		}
		if attempt >= pol.retries {
			return nil, lastErr
		}
		d := pol.delay(attempt+1, retryAfter)
		if rem, ok := pol.remaining(); ok && d >= rem {
			// Sleeping through the rest of the budget guarantees the next
			// attempt is doomed; stop with the truth instead.
			if lastErr != nil {
				return nil, fmt.Errorf("-timeout budget spent after %d attempts: %w", attempt+1, lastErr)
			}
			return nil, fmt.Errorf("-timeout budget spent after %d attempts (server busy)", attempt+1)
		}
		if rotated {
			fmt.Fprintf(os.Stderr, "bufins: server unavailable (attempt %d/%d), rotating to %s in %s\n",
				attempt+1, pol.retries, servers.current(), d.Round(time.Millisecond))
		} else {
			fmt.Fprintf(os.Stderr, "bufins: server busy (attempt %d/%d), retrying in %s\n",
				attempt+1, pol.retries, d.Round(time.Millisecond))
		}
		time.Sleep(d)
	}
}

// runBatch reads a JSON array of insert requests and posts them to the
// server as one /v1/insert:batch call, printing the aggregate response.
// Overload answers (429 queue-full, 503 draining/shedding) are retried
// with capped exponential backoff honoring Retry-After. A non-200
// aggregate status or any failed item is reported on stderr; per-item
// errors do not abort the batch (exit is non-zero only when the call
// itself failed).
func runBatch(file string, servers *serverList, pol retryPolicy) error {
	var raw []byte
	var err error
	if file == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(file)
	}
	if err != nil {
		return err
	}
	var items []server.InsertRequest
	if err := json.Unmarshal(raw, &items); err != nil {
		return fmt.Errorf("parsing %s (want a JSON array of insert requests): %w", file, err)
	}
	payload, err := json.Marshal(server.BatchInsertRequest{Items: items})
	if err != nil {
		return err
	}
	resp, err := postWithRetry(servers, "/v1/insert:batch", payload, pol)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("batch request answered %s", resp.Status)
	}
	var out server.BatchInsertResult
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("parsing batch response: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bufins: batch of %d: %d succeeded, %d failed\n",
		len(out.Items), out.Succeeded, out.Errors)
	return nil
}

// runStream posts the yield request to /v1/yield:stream and follows the
// NDJSON event stream: progress events tick on stderr, the final result
// prints on stdout (the full /v1/yield DTO with -json), and an error
// event carries the status the plain endpoint would have answered.
func runStream(req server.YieldRequest, servers *serverList, pol retryPolicy, jsonOut bool) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := postWithRetry(servers, "/v1/yield:stream", payload, pol)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		var e server.ErrorResult
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("stream request answered %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("stream request answered %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var result *server.YieldResult
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev server.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("parsing stream event: %w", err)
		}
		switch ev.Type {
		case "progress":
			if p := ev.Progress; p != nil {
				fmt.Fprintf(os.Stderr, "bufins: mc %7d samples  quantile RAT %9.2f ps  ±%.2f ps\n",
					p.Samples, p.QuantileRAT, p.CIHalfWidthPS)
			}
		case "result":
			result = ev.Result
		case "error":
			return fmt.Errorf("server: %s (status %d)", ev.Error, ev.Status)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if result == nil {
		return fmt.Errorf("stream ended without a result event")
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(result)
	}
	ins := result.Insert
	fmt.Printf("insert: %d buffers on %d sinks, objective %.2f ps (%.3fs server-side)\n",
		ins.NumBuffers, ins.Sinks, ins.ObjectivePS, ins.ElapsedMS/1000)
	fmt.Printf("yield:  mean %.2f ps, sigma %.2f ps, yield RAT %.2f ps (analytic)\n",
		result.MeanPS, result.SigmaPS, result.YieldRATPS)
	if mc := result.MonteCarlo; mc != nil {
		state := "budget exhausted"
		if mc.Converged {
			state = "converged"
		}
		fmt.Printf("mc:     %d samples (%s), mean %.2f ps, sigma %.2f ps, quantile RAT %.2f ps ±%.2f ps\n",
			mc.Samples, state, mc.MeanPS, mc.SigmaPS, mc.QuantileRAT, mc.CIHalfWidthPS)
	}
	return nil
}

func loadTree(bench, file string) (*vabuf.Tree, error) {
	switch {
	case bench != "" && file != "":
		return nil, fmt.Errorf("give either -bench or -tree, not both")
	case bench != "":
		return vabuf.GenerateBenchmark(bench)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return vabuf.ReadTree(f)
	default:
		return nil, fmt.Errorf("one of -bench or -tree is required")
	}
}
