// Command vabufd serves variation-aware buffer insertion over HTTP/JSON:
// a long-running daemon that amortizes benchmark and variation-model
// construction across requests (LRU caches) and runs insertions on a
// bounded worker pool.
//
// Endpoints:
//
//	POST /v1/insert       run buffer insertion (see internal/server.InsertRequest)
//	POST /v1/insert:batch up to -max-batch insertions as one aggregate call
//	POST /v1/yield        insertion + yield analysis, optional Monte Carlo
//	POST /v1/yield:batch  batched yield runs
//	POST /v1/yield:stream insertion + adaptive Monte Carlo streamed as
//	                      newline-delimited JSON progress events and a final result
//	POST /v1/cache/fill   peer cache fill: accept a result computed by a
//	                      fleet sibling (vabufr replays failover-served
//	                      answers here; epoch-checked, fingerprint recomputed)
//	GET  /v1/benchmarks   list the built-in Table 1 benchmark names
//	GET  /healthz         liveness probe (200 while the process is up)
//	GET  /readyz          readiness probe (503 while draining, restoring a
//	                      snapshot, or shedding under sustained overload)
//	GET  /metrics         counters, latency histograms, per-class queue and cache stats
//
// The job queue has two priority classes: interactive (default) and
// sweep (batch items and requests with "priority": "sweep"). Dispatch
// prefers interactive work; every -sweep-every-th dispatch takes the
// sweep queue so bulk batches cannot starve.
//
// Overload (full job queue) answers 429 with Retry-After; per-request
// deadlines map ErrTimeout to 504 and candidate-capacity overruns
// (ErrCapacity) to 413. SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight jobs and — with -snapshot set — writes a final cache
// snapshot that the next boot restores for a warm start.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"vabuf/internal/chaos"
	"vabuf/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8577", "listen address")
		workers    = flag.Int("workers", 0, "insertion workers (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "interactive job-queue depth behind the workers")
		sweepQueue = flag.Int("sweep-queue", 256, "sweep-class (batch) job-queue depth")
		sweepEvery = flag.Int("sweep-every", 4,
			"class weight: every Nth dispatch prefers the sweep queue (starvation guard; 1 disables)")
		maxBatch    = flag.Int("max-batch", 256, "max items per batch request")
		treeCache   = flag.Int("tree-cache", 32, "parsed/generated tree LRU entries")
		modelCache  = flag.Int("model-cache", 32, "variation-model LRU entries")
		resultCache = flag.Int("result-cache", 128,
			"content-addressed result-cache entries; repeats of a completed insert/yield request answer from memory (0 disables)")
		subtreeCache = flag.Int("subtree-cache-mb", 64,
			"subtree DP-frontier cache budget in MiB, shared across runs; lightly edited trees recompute only changed branches (0 disables)")
		timeout = flag.Duration("timeout", 2*time.Minute,
			"default per-request insertion deadline (0 = none)")
		maxBody     = flag.Int64("max-body", 8<<20, "request body limit in bytes")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
		snapshot    = flag.String("snapshot", "",
			"cache snapshot file: restored on boot, rewritten on graceful drain (empty = no persistence)")
		snapshotEvery = flag.Duration("snapshot-every", 0,
			"also rewrite -snapshot periodically, bounding warm-up lost to a crash (0 = only on drain)")
		shedAfter = flag.Duration("shed-after", 10*time.Second,
			"reject sweep-class work early (503) once the job queue has been saturated this long (0 disables)")
		instance = flag.String("instance", "",
			"instance id surfaced in /metrics, /readyz and the Vabuf-Instance header (empty = hostname:port, resolved after listen)")
		epoch = flag.String("epoch", "",
			"cache epoch mixed into result fingerprints; bump it (fleet-wide) to invalidate every cached result after a library or model change")
		chaosSpec = flag.String("chaos", "",
			"fault-injection spec for chaos testing, e.g. 'seed=7,error=0.1,latency=0.05:150ms' (see internal/chaos; empty disables)")
	)
	flag.Parse()

	injector, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatalf("vabufd: -chaos: %v", err)
	}
	if injector != nil {
		log.Printf("vabufd: CHAOS ENABLED: %s", *chaosSpec)
	}

	resultCacheSize := *resultCache
	if resultCacheSize == 0 {
		resultCacheSize = -1 // flag 0 = off; Config 0 = default, negative = off
	}
	subtreeCacheMB := *subtreeCache
	if subtreeCacheMB == 0 {
		subtreeCacheMB = -1 // same convention as -result-cache
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		SweepQueueDepth: *sweepQueue,
		SweepEvery:      *sweepEvery,
		MaxBatchItems:   *maxBatch,
		TreeCacheSize:   *treeCache,
		ModelCacheSize:  *modelCache,
		ResultCacheSize: resultCacheSize,
		SubtreeCacheMB:  subtreeCacheMB,
		DefaultTimeout:  *timeout,
		MaxRequestBytes: *maxBody,
		EnablePprof:     *enablePprof,
		SnapshotPath:    *snapshot,
		SnapshotEvery:   *snapshotEvery,
		ShedAfter:       *shedAfter,
		Instance:        *instance,
		Epoch:           *epoch,
	})
	if *snapshot != "" {
		// Two instances sharing one snapshot path would silently clobber
		// each other's drain-time writes; refuse to start instead.
		release, err := server.LockSnapshot(*snapshot)
		if err != nil {
			log.Fatalf("vabufd: %v", err)
		}
		defer release()
		if _, err := os.Stat(*snapshot); err == nil {
			// Restore in the background so the listener comes up
			// immediately; /readyz reports 503 restoring until done.
			srv.RestoreSnapshotAsync(*snapshot, func(stats server.RestoreStats, err error) {
				if err != nil {
					log.Printf("vabufd: snapshot restore: %v (serving cold)", err)
					return
				}
				log.Printf("vabufd: snapshot restored: %d trees, %d models, %d results, %d skipped",
					stats.Trees, stats.Models, stats.Results, stats.Skipped)
			})
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Printf("vabufd: snapshot %s unreadable: %v (serving cold)", *snapshot, err)
		}
	}

	// Install the signal handler before the listener comes up: once the
	// daemon is reachable (and has logged its address), SIGTERM must take
	// the graceful path — never the runtime's default kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before logging so -addr with port 0 reports the bound port —
	// the kill-and-restart integration test (and local tooling) parses it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vabufd: listen: %v", err)
	}
	if *instance == "" {
		// Default the instance id to hostname:port — only knowable after
		// the listener binds (-addr may use port 0).
		host, _ := os.Hostname()
		if host == "" {
			host = "vabufd"
		}
		if _, port, err := net.SplitHostPort(ln.Addr().String()); err == nil {
			srv.SetInstanceID(net.JoinHostPort(host, port))
		} else {
			srv.SetInstanceID(host)
		}
	}
	hs := &http.Server{
		Handler:           injector.Middleware(srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	nWorkers := *workers
	if nWorkers < 1 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	log.Printf("vabufd listening on %s (%d workers, queue %d+%d sweep, 1-in-%d sweep dispatch, max batch %d, tree cache %d, model cache %d)",
		ln.Addr(), nWorkers, *queue, *sweepQueue, *sweepEvery, *maxBatch, *treeCache, *modelCache)

	select {
	case err := <-errc:
		log.Fatalf("vabufd: %v", err)
	case <-ctx.Done():
	}

	// Flip readiness first so probes steer traffic away, then stop the
	// listener, then drain the pool and write the final snapshot.
	log.Print("vabufd: shutdown signal; draining in-flight jobs")
	srv.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("vabufd: shutdown: %v", err)
	}
	srv.Close()
	log.Print("vabufd: drained, exiting")
}
