// Command experiments regenerates every table and figure of the paper's
// evaluation section. With no flags it runs the full suite at the default
// configuration (the one recorded in EXPERIMENTS.md); -run selects a
// single experiment and -quick downsizes everything for a fast pass.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|table4|table5|fig2|fig3|fig5|fig6|pbar|capacity]
//	            [-quick] [-budget 0.15] [-mc 10000] [-htree 8] [-benches p1,r1,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"vabuf"
	"vabuf/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// profileTo starts a CPU profile and/or arranges a heap profile; the
// returned func finalizes both.
func profileTo(cpuFile, memFile string) (func() error, error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpu = f
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func run() error {
	var (
		which    = flag.String("run", "all", "experiment to run (all, table1, table2, table3, table4, table5, fig2, fig3, fig5, fig6, pbar, capacity)")
		quick    = flag.Bool("quick", false, "downsized configuration for a fast pass")
		budget   = flag.Float64("budget", 0, "per-class variation budget (default 0.15; paper's stated value is 0.05)")
		mc       = flag.Int("mc", 0, "Monte-Carlo samples for Figure 6")
		htree    = flag.Int("htree", 0, "H-tree levels for the capacity run")
		benches  = flag.String("benches", "", "comma-separated benchmark subset (default: all)")
		pbarOn   = flag.String("pbar-bench", "r1", "benchmark for the pbar sweep")
		csvDir   = flag.String("csv", "", "also write the figure data series as CSV files into this directory")
		parallel = flag.Int("parallel", 0, "DP worker goroutines per insertion (0 = GOMAXPROCS, 1 = serial; results identical)")
		hullName = flag.String("hull", "auto", "convex-hull buffering kernel: auto, on, or off (results identical)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	finishProfiles, err := profileTo(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := finishProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: profile:", err)
		}
	}()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Parallelism = *parallel
	if cfg.Hull, err = vabuf.ParseHullMode(*hullName); err != nil {
		return err
	}
	if *budget != 0 {
		cfg.BudgetFrac = *budget
	}
	if *mc != 0 {
		cfg.MCSamples = *mc
	}
	if *htree != 0 {
		cfg.HTreeLevels = *htree
	}
	if *benches != "" {
		cfg.Benches = strings.Split(*benches, ",")
	}
	w := os.Stdout

	if *csvDir != "" {
		if err := experiments.WriteFigureCSVs(*csvDir, cfg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote figure CSVs to %s\n", *csvDir)
	}

	switch *which {
	case "all":
		return experiments.RunAll(w, cfg)
	case "table1":
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderTable1(w, rows)
	case "table2":
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderTable2(w, rows)
	case "table3", "table4":
		hetero := *which == "table3"
		rows, err := experiments.YieldComparison(cfg, hetero)
		if err != nil {
			return err
		}
		return experiments.RenderTable34(w, rows, hetero)
	case "table5":
		rows, err := experiments.YieldComparison(cfg, true)
		if err != nil {
			return err
		}
		return experiments.RenderTable5(w, rows)
	case "fig2":
		curves, err := experiments.Figure2(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderFigure2(w, curves)
	case "fig3":
		res, err := experiments.Figure3(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderFigure3(w, res)
	case "fig5":
		res, err := experiments.Figure5(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderFigure5(w, res)
	case "fig6":
		res, err := experiments.Figure6(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderFigure6(w, res)
	case "pbar":
		rows, err := experiments.PbarSweep(cfg, *pbarOn)
		if err != nil {
			return err
		}
		return experiments.RenderPbarSweep(w, *pbarOn, rows)
	case "capacity":
		res, err := experiments.CapacityHTree(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderCapacity(w, res)
	case "budget":
		rows, err := experiments.BudgetAblation(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderBudgetAblation(w, rows)
	case "wiresizing":
		rows, err := experiments.WireSizingAblation(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderWireSizing(w, rows)
	case "minvar":
		rows, err := experiments.MinVarianceAblation(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderMinVariance(w, rows)
	case "corners":
		rows, err := experiments.CornerAblation(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderCornerAblation(w, rows)
	case "inverters":
		rows, err := experiments.InverterAblation(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderInverterAblation(w, rows)
	case "skew":
		rows, err := experiments.SkewExtension(cfg)
		if err != nil {
			return err
		}
		return experiments.RenderSkewExtension(w, rows)
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}
}
