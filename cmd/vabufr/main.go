// Command vabufr fronts a fleet of vabufd instances with a
// consistent-hash router. It owns no DP engine — only routing: each
// request's content-addressed fingerprint picks the one backend whose
// result cache should own it, so N instances behave like one big cache
// instead of N cold ones.
//
//	POST /v1/insert        proxied to the fingerprint's ring owner
//	POST /v1/yield         (failover walks the ring when the owner is down)
//	POST /v1/yield:stream  proxied streaming; failover up to first byte
//	POST /v1/insert:batch  split per owner, scatter-gathered in order
//	POST /v1/yield:batch
//	GET  /v1/benchmarks    proxied to any healthy backend
//	GET  /healthz          liveness (200 while the router is up)
//	GET  /readyz           503 until at least one backend probes healthy
//	GET  /metrics          per-backend counters, failovers, probe state,
//	                       scatter fan-out histogram, peer-fill queue
//
// A background poller probes each backend's /readyz on a jittered
// interval with hysteresis; a failed proxy attempt marks the backend
// down immediately. Results served by a failover backend are replayed
// asynchronously to the recovered owner (POST /v1/cache/fill) so the
// fleet's cache partition re-converges without recomputation.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vabuf/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8576", "listen address")
		backends = flag.String("backends", "",
			"comma-separated vabufd base URLs forming the ring (required), e.g. http://127.0.0.1:8577,http://127.0.0.1:8578")
		vnodes = flag.Int("vnodes", 0,
			"virtual nodes per backend on the hash ring (0 = 64)")
		probeEvery = flag.Duration("probe-every", 2*time.Second,
			"base /readyz probe interval per backend (jittered ±30%)")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "per-probe deadline")
		failAfter    = flag.Int("fail-after", 2,
			"consecutive probe failures before a backend is marked down (proxy errors mark down immediately)")
		recoverAfter = flag.Int("recover-after", 2,
			"consecutive probe successes before a down backend takes traffic again")
		maxBody   = flag.Int64("max-body", 8<<20, "request body limit in bytes")
		fillQueue = flag.Int("fill-queue", 256,
			"pending peer-cache-fill queue depth (0 = default, negative disables peer fill)")
		fillWait = flag.Duration("fill-wait", 2*time.Minute,
			"how long a queued fill waits for its owner to recover before being dropped")
	)
	flag.Parse()

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, strings.TrimRight(b, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("vabufr: -backends is required (comma-separated vabufd base URLs)")
	}

	rt, err := router.New(router.Config{
		Backends:        urls,
		VNodes:          *vnodes,
		ProbeInterval:   *probeEvery,
		ProbeTimeout:    *probeTimeout,
		FailAfter:       *failAfter,
		RecoverAfter:    *recoverAfter,
		MaxRequestBytes: *maxBody,
		FillQueue:       *fillQueue,
		FillWait:        *fillWait,
	})
	if err != nil {
		log.Fatalf("vabufr: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before logging so -addr with port 0 reports the bound port —
	// scripts/fleet.sh and the integration tests parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vabufr: listen: %v", err)
	}
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("vabufr listening on %s (%d backends, %d vnodes each)",
		ln.Addr(), len(urls), func() int {
			if *vnodes > 0 {
				return *vnodes
			}
			return 64
		}())

	select {
	case err := <-errc:
		log.Fatalf("vabufr: %v", err)
	case <-ctx.Done():
	}

	log.Print("vabufr: shutdown signal; closing")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("vabufr: shutdown: %v", err)
	}
	rt.Close()
	log.Print("vabufr: exiting")
}
