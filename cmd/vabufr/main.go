// Command vabufr fronts a fleet of vabufd instances with a
// consistent-hash router. It owns no DP engine — only routing: each
// request's content-addressed fingerprint picks the one backend whose
// result cache should own it, so N instances behave like one big cache
// instead of N cold ones.
//
//	POST /v1/insert        proxied to the fingerprint's ring owner
//	POST /v1/yield         (failover walks the ring when the owner is down)
//	POST /v1/yield:stream  proxied streaming; failover up to first byte
//	POST /v1/insert:batch  split per owner, scatter-gathered in order
//	POST /v1/yield:batch
//	GET  /v1/benchmarks    proxied to any healthy backend
//	GET  /healthz          liveness (200 while the router is up)
//	GET  /readyz           503 until at least one backend probes healthy
//	GET  /metrics          per-backend counters, failovers, probe state,
//	                       scatter fan-out histogram, peer-fill queue
//	GET/POST /admin/backends  (with -admin) inspect/replace membership
//
// A background poller probes each backend's /readyz on a jittered
// interval with hysteresis; a failed proxy attempt marks the backend
// down immediately. Results served by a failover backend are replayed
// asynchronously to the recovered owner (POST /v1/cache/fill) so the
// fleet's cache partition re-converges without recomputation, and a key
// whose owner changed is first looked up synchronously at its previous
// owner (POST /v1/cache/lookup) before being recomputed cold.
//
// Membership is dynamic: with -backends-file, SIGHUP re-reads the file
// and rebuilds the ring in place — in-flight requests finish against
// the old view, new backends take traffic once their probes pass, and
// removed backends' probers and pending fills are retired.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vabuf/internal/chaos"
	"vabuf/internal/router"
)

// parseBackendList splits a backend list on commas, whitespace, and
// newlines, ignoring blanks and #-comment lines — the shared format of
// the -backends flag and the -backends-file contents.
func parseBackendList(s string) []string {
	var urls []string
	for _, line := range strings.Split(s, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		for _, b := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == '\r'
		}) {
			if b = strings.TrimSpace(b); b != "" {
				urls = append(urls, strings.TrimRight(b, "/"))
			}
		}
	}
	return urls
}

// readBackendsFile loads and parses a -backends-file.
func readBackendsFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	urls := parseBackendList(string(data))
	if len(urls) == 0 {
		return nil, fmt.Errorf("%s contains no backend URLs", path)
	}
	return urls, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8576", "listen address")
		backends = flag.String("backends", "",
			"comma-separated vabufd base URLs forming the ring, e.g. http://127.0.0.1:8577,http://127.0.0.1:8578 (exactly one of -backends/-backends-file)")
		backendsFile = flag.String("backends-file", "",
			"file listing vabufd base URLs (one per line or comma/space separated, # comments); SIGHUP re-reads it and rebuilds the ring")
		vnodes = flag.Int("vnodes", 0,
			"virtual nodes per backend on the hash ring (0 = 64)")
		probeEvery = flag.Duration("probe-every", 2*time.Second,
			"base /readyz probe interval per backend (jittered ±30%)")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "per-probe deadline")
		failAfter    = flag.Int("fail-after", 2,
			"consecutive probe failures before a backend is marked down (proxy errors mark down immediately)")
		recoverAfter = flag.Int("recover-after", 2,
			"consecutive probe successes before a down backend takes traffic again")
		maxBody   = flag.Int64("max-body", 8<<20, "request body limit in bytes")
		fillQueue = flag.Int("fill-queue", 256,
			"pending peer-cache-fill queue depth (0 = default, negative disables peer fill)")
		fillWait = flag.Duration("fill-wait", 2*time.Minute,
			"how long a queued fill waits for its owner to recover before being dropped")
		lookupTimeout = flag.Duration("lookup-timeout", 500*time.Millisecond,
			"deadline for one synchronous peer cache lookup (negative disables peer lookup)")
		lookupWindow = flag.Duration("lookup-window", time.Minute,
			"how long after a ring rebuild moved keys are still looked up at their previous owner")
		admin = flag.Bool("admin", false,
			"expose GET/POST /admin/backends for runtime membership changes")
		retryBudget = flag.Float64("retry-budget", 0,
			"per-backend retry-budget ratio: tokens earned per first attempt; each manufactured request (failover, hedge, lookup, fill) pays one token (0 = 0.1, negative disables)")
		retryBurst = flag.Int("retry-burst", 0,
			"retry token-bucket cap and initial balance per backend (0 = 10)")
		hedgeAfter = flag.Duration("hedge-after", 0,
			"hedge idempotent single requests after max(this, observed p95) with a budgeted duplicate to the next backend (0 disables)")
		breakerFailures = flag.Int("breaker-failures", 0,
			"consecutive request failures that open a backend's circuit breaker (0 = 5, negative disables)")
		breakerCooldown = flag.Duration("breaker-cooldown", 0,
			"open-breaker duration between half-open probe requests (0 = 5s)")
		chaosSpec = flag.String("chaos", "",
			"client-side fault-injection spec for chaos testing, e.g. 'seed=7,reset=0.05' (see internal/chaos; empty disables)")
	)
	flag.Parse()

	injector, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatalf("vabufr: -chaos: %v", err)
	}
	var client *http.Client
	if injector != nil {
		log.Printf("vabufr: CHAOS ENABLED: %s", *chaosSpec)
		client = &http.Client{Transport: injector.Transport(nil)}
	}

	if (*backends == "") == (*backendsFile == "") {
		log.Fatal("vabufr: exactly one of -backends or -backends-file is required")
	}
	var urls []string
	if *backendsFile != "" {
		var err error
		urls, err = readBackendsFile(*backendsFile)
		if err != nil {
			log.Fatalf("vabufr: reading -backends-file: %v", err)
		}
	} else {
		urls = parseBackendList(*backends)
	}
	if len(urls) == 0 {
		log.Fatal("vabufr: backend list is empty")
	}

	rt, err := router.New(router.Config{
		Backends:        urls,
		VNodes:          *vnodes,
		ProbeInterval:   *probeEvery,
		ProbeTimeout:    *probeTimeout,
		FailAfter:       *failAfter,
		RecoverAfter:    *recoverAfter,
		MaxRequestBytes: *maxBody,
		FillQueue:       *fillQueue,
		FillWait:        *fillWait,
		LookupTimeout:   *lookupTimeout,
		LookupWindow:    *lookupWindow,
		RetryBudget:     *retryBudget,
		RetryBurst:      *retryBurst,
		HedgeAfter:      *hedgeAfter,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		EnableAdmin:     *admin,
		Client:          client,
	})
	if err != nil {
		log.Fatalf("vabufr: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads -backends-file and rebuilds the ring. Without a
	// file there is nothing to re-read; the signal is acknowledged and
	// ignored so an orchestrator's blanket HUP never kills the router.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *backendsFile == "" {
				log.Print("vabufr: SIGHUP ignored (no -backends-file)")
				continue
			}
			next, err := readBackendsFile(*backendsFile)
			if err != nil {
				log.Printf("vabufr: SIGHUP reload failed, keeping current ring: %v", err)
				continue
			}
			if err := rt.Reload(next); err != nil {
				log.Printf("vabufr: SIGHUP reload rejected, keeping current ring: %v", err)
			}
		}
	}()

	// Listen before logging so -addr with port 0 reports the bound port —
	// scripts/fleet.sh and the integration tests parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vabufr: listen: %v", err)
	}
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("vabufr listening on %s (%d backends, %d vnodes each)",
		ln.Addr(), len(urls), func() int {
			if *vnodes > 0 {
				return *vnodes
			}
			return 64
		}())

	select {
	case err := <-errc:
		// Not log.Fatalf: the probers and the fill worker must drain
		// before exit, or an in-flight peer fill could be cut mid-POST.
		log.Printf("vabufr: serve: %v", err)
		rt.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Print("vabufr: shutdown signal; closing")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("vabufr: shutdown: %v", err)
	}
	rt.Close()
	log.Print("vabufr: exiting")
}
